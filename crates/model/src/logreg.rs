//! Multiclass logistic (softmax) regression with closed-form calculus.
//!
//! This is the model class the paper's theory requires: with L2
//! regularization (added by [`crate::WeightedObjective`]) the training
//! objective is μ-strongly convex (§3.2), which Increm-Infl and
//! DeltaGrad-L rely on. Parameters are a `C × (d+1)` weight matrix
//! flattened row-major (class-major), with the bias folded in as a last
//! implicit all-ones feature.
//!
//! Closed forms used throughout (with `x̃ = [x; 1]`, `p = softmax(Wx̃)`):
//!
//! * loss: `F(W, z) = −Σ_k y⁽ᵏ⁾ log p⁽ᵏ⁾` (Eq. 8);
//! * gradient: `∇_W F = (p − y) x̃ᵀ`;
//! * per-class gradient (Eq. 9): `−∇_W log p⁽ᶜ⁾ = (p − e_c) x̃ᵀ`;
//! * Hessian: `H = (diag(p) − ppᵀ) ⊗ x̃x̃ᵀ` — label-independent, so the
//!   per-class Hessians of Theorem 1 coincide with it;
//! * Hessian norm: `λ_max(diag(p) − ppᵀ) · ‖x̃‖²`, with the `C × C`
//!   eigenproblem solved by the power method (the paper runs the power
//!   method on the full `m × m` Hessian via autodiff HVPs; running it on
//!   the Kronecker core is algebraically identical and far cheaper).

use crate::label::SoftLabel;
use crate::model::{KernelPath, Model};
use crate::store::DatasetStore;
use chef_linalg::power::{power_method, PowerConfig};
use chef_linalg::{kernels, vector, KernelBackend, Matrix, Workspace};

/// Samples per block in the batched [`Model::hvp_block`] override —
/// keeps one block's gathered features plus its `P`/`U` panels inside
/// cache while the accumulator row stays hot.
const HVP_BLOCK: usize = 256;

/// Samples per block in the batched [`Model::grad_block`] override —
/// same cache story as [`HVP_BLOCK`], with only the `P` panel live.
const GRAD_BLOCK: usize = 256;

/// Softmax regression over `dim` raw features and `num_classes` classes.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    dim: usize,
    num_classes: usize,
    backend: KernelBackend,
}

impl LogisticRegression {
    /// Create a model description (parameters live outside the model)
    /// on the bit-identical [`KernelBackend::Reference`] panels.
    ///
    /// # Panics
    /// Panics unless `dim ≥ 1` and `num_classes ≥ 2`.
    pub fn new(dim: usize, num_classes: usize) -> Self {
        assert!(dim >= 1, "LogisticRegression: dim must be ≥ 1");
        assert!(num_classes >= 2, "LogisticRegression: need ≥ 2 classes");
        Self {
            dim,
            num_classes,
            backend: KernelBackend::Reference,
        }
    }

    /// Select the precision/ILP backend for the batched GEMM panels.
    /// Only the block entry points (`score_block`/`grad_block`/
    /// `hvp_block`) dispatch on it; the per-sample closed forms are
    /// backend-independent (see the numerics contract on
    /// [`KernelBackend`]).
    pub fn with_backend(mut self, backend: KernelBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Columns per class: `dim + 1` (bias folded in).
    #[inline]
    pub fn cols(&self) -> usize {
        self.dim + 1
    }

    /// Zero-initialized parameter vector.
    pub fn init_params(&self) -> Vec<f64> {
        vec![0.0; self.num_params()]
    }

    /// Logits `Wx̃` into `out` (length `C`).
    fn logits(&self, w: &[f64], x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(w.len(), self.num_params());
        debug_assert_eq!(x.len(), self.dim);
        let cols = self.cols();
        for (c, o) in out.iter_mut().enumerate() {
            let row = &w[c * cols..(c + 1) * cols];
            *o = vector::dot(&row[..self.dim], x) + row[self.dim];
        }
    }

    /// Largest eigenvalue of the softmax core `diag(p) − ppᵀ`.
    fn core_norm(p: &[f64]) -> f64 {
        let c = p.len();
        if c == 2 {
            // Exact: trace = 2p₀p₁ splits into {0, p₀(1−p₀)+p₁(1−p₁)}.
            return p[0] * (1.0 - p[0]) + p[1] * (1.0 - p[1]);
        }
        let mut core = Matrix::zeros(c, c);
        for i in 0..c {
            for j in 0..c {
                core[(i, j)] = if i == j {
                    p[i] * (1.0 - p[i])
                } else {
                    -p[i] * p[j]
                };
            }
        }
        power_method(&core, &PowerConfig::default()).eigenvalue
    }

    /// `∇_W F = (p − y) x̃ᵀ` with caller-provided probability scratch
    /// `p` (length `C`) — the shared body of [`Model::grad`] and
    /// [`Model::grad_ws`].
    fn grad_with_scratch(
        &self,
        w: &[f64],
        x: &[f64],
        y: &SoftLabel,
        out: &mut [f64],
        p: &mut [f64],
    ) {
        debug_assert_eq!(out.len(), self.num_params());
        self.predict_proba(w, x, p);
        let cols = self.cols();
        for c in 0..self.num_classes {
            let coeff = p[c] - y.prob(c);
            let row = &mut out[c * cols..(c + 1) * cols];
            for (ri, xi) in row[..self.dim].iter_mut().zip(x) {
                *ri = coeff * xi;
            }
            row[self.dim] = coeff;
        }
    }

    /// `Hv = ((diag(p) − ppᵀ) Vx̃) x̃ᵀ` with caller-provided scratch `p`
    /// and `u` (each length `C`) — the shared body of [`Model::hvp`]
    /// and [`Model::hvp_ws`].
    fn hvp_with_scratch(
        &self,
        w: &[f64],
        x: &[f64],
        v: &[f64],
        out: &mut [f64],
        p: &mut [f64],
        u: &mut [f64],
    ) {
        debug_assert_eq!(v.len(), self.num_params());
        debug_assert_eq!(out.len(), self.num_params());
        self.predict_proba(w, x, p);
        let cols = self.cols();
        // u_c = v_c · x̃ for each class row of V.
        for (c, uc) in u.iter_mut().enumerate() {
            let row = &v[c * cols..(c + 1) * cols];
            *uc = vector::dot(&row[..self.dim], x) + row[self.dim];
        }
        // s = (diag(p) − ppᵀ) u = p ∘ u − p (pᵀu).
        let pu = vector::dot(p, u);
        for c in 0..self.num_classes {
            let s = p[c] * (u[c] - pu);
            let row = &mut out[c * cols..(c + 1) * cols];
            for (ri, xi) in row[..self.dim].iter_mut().zip(x) {
                *ri = s * xi;
            }
            row[self.dim] = s;
        }
    }

    /// One affine panel `out = X̃Mᵀ` on the configured backend.
    /// `Reference` uses the sequential-reduction [`kernels::affine_nt`]
    /// (the bit-identity anchor); `UnrolledF64` the 4-lane
    /// [`kernels::affine_nt_unrolled`]; `MixedF32` demotes both operands
    /// into pooled f32 buffers and runs
    /// [`kernels::affine_nt_mixed_f32`].
    fn affine_panel(&self, xs: &[f64], m: &[f64], out: &mut [f64], ws: &mut Workspace) {
        match self.backend {
            KernelBackend::Reference => kernels::affine_nt(xs, m, self.dim, out),
            KernelBackend::UnrolledF64 => kernels::affine_nt_unrolled(xs, m, self.dim, out),
            KernelBackend::MixedF32 => {
                let xf = ws.take_f32_from(xs);
                let mf = ws.take_f32_from(m);
                kernels::affine_nt_mixed_f32(&xf, &mf, self.dim, out);
                ws.put_f32(mf);
                ws.put_f32(xf);
            }
        }
    }

    /// Fill `pb` (softmax probabilities) and `ub` (`U = X̃Vᵀ`), each
    /// `bsz×C` — the two GEMM panels every batched entry point consumes,
    /// computed on the configured [`KernelBackend`]. Consecutive blocks
    /// (the common case: pools and Hessian batches are ascending index
    /// ranges) feed the dataset's contiguous feature storage straight
    /// into the GEMM; scattered blocks gather their rows into `xb`
    /// first.
    #[allow(clippy::too_many_arguments)]
    fn block_panels(
        &self,
        w: &[f64],
        data: &dyn DatasetStore,
        block: &[usize],
        v: &[f64],
        xb: &mut [f64],
        pb: &mut [f64],
        ub: &mut [f64],
        ws: &mut Workspace,
    ) {
        let (d, c) = (self.dim, self.num_classes);
        let xs = block_features(data, block, d, xb);
        self.affine_panel(xs, w, pb, ws);
        for r in 0..block.len() {
            vector::softmax_in_place(&mut pb[r * c..(r + 1) * c]);
        }
        self.affine_panel(xs, v, ub, ws);
    }

    /// Fill `pb` (`bsz×C` softmax probabilities) from a pre-gathered
    /// feature block `xs` — the single panel [`Model::grad_block`]
    /// consumes. Unlike [`Self::block_panels`], the `Reference` backend
    /// runs this panel through the ILP-unrolled affine kernel
    /// ([`kernels::affine_nt_unrolled`]): the forward panel dominates
    /// the minibatch-gradient cost, and grad_block's contract is ≤1e-10
    /// agreement with the per-sample path, not bit equality — which
    /// also makes `UnrolledF64` bit-identical to `Reference` here.
    fn proba_panel(&self, w: &[f64], xs: &[f64], pb: &mut [f64], ws: &mut Workspace) {
        let c = self.num_classes;
        match self.backend {
            KernelBackend::Reference | KernelBackend::UnrolledF64 => {
                kernels::affine_nt_unrolled(xs, w, self.dim, pb);
            }
            KernelBackend::MixedF32 => {
                let xf = ws.take_f32_from(xs);
                let wf = ws.take_f32_from(w);
                kernels::affine_nt_mixed_f32(&xf, &wf, self.dim, pb);
                ws.put_f32(wf);
                ws.put_f32(xf);
            }
        }
        for r in 0..pb.len() / c {
            vector::softmax_in_place(&mut pb[r * c..(r + 1) * c]);
        }
    }
}

/// Borrow a block's feature rows: the dataset's contiguous storage for
/// consecutive blocks (the common case — minibatches from `BatchPlan`
/// are ascending ranges), a gather into `xb` otherwise.
fn block_features<'a>(
    data: &'a dyn DatasetStore,
    block: &[usize],
    d: usize,
    xb: &'a mut [f64],
) -> &'a [f64] {
    let consecutive = block.windows(2).all(|pair| pair[1] == pair[0] + 1);
    // Zero-copy only when the run also stays inside one contiguous
    // storage unit (always true in memory; one chunk for a sharded
    // store). The gather fallback reads the same f64 bits row by row,
    // so which path runs can never change a result.
    if consecutive && !block.is_empty() && data.contiguous_limit(block[0]) >= block[0] + block.len()
    {
        data.feature_rows(block[0], block[0] + block.len())
    } else {
        for (r, &i) in block.iter().enumerate() {
            xb[r * d..(r + 1) * d].copy_from_slice(data.feature(i));
        }
        xb
    }
}

impl Model for LogisticRegression {
    fn num_params(&self) -> usize {
        self.num_classes * self.cols()
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn feature_dim(&self) -> usize {
        self.dim
    }

    fn predict_proba(&self, w: &[f64], x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.num_classes);
        self.logits(w, x, out);
        vector::softmax_in_place(out);
    }

    fn grad(&self, w: &[f64], x: &[f64], y: &SoftLabel, out: &mut [f64]) {
        let mut p = vec![0.0; self.num_classes];
        self.grad_with_scratch(w, x, y, out, &mut p);
    }

    fn hvp(&self, w: &[f64], x: &[f64], _y: &SoftLabel, v: &[f64], out: &mut [f64]) {
        let mut p = vec![0.0; self.num_classes];
        let mut u = vec![0.0; self.num_classes];
        self.hvp_with_scratch(w, x, v, out, &mut p, &mut u);
    }

    fn grad_ws(&self, w: &[f64], x: &[f64], y: &SoftLabel, out: &mut [f64], ws: &mut Workspace) {
        let mut p = ws.take(self.num_classes);
        self.grad_with_scratch(w, x, y, out, &mut p);
        ws.put(p);
    }

    fn hvp_ws(
        &self,
        w: &[f64],
        x: &[f64],
        _y: &SoftLabel,
        v: &[f64],
        out: &mut [f64],
        ws: &mut Workspace,
    ) {
        let mut p = ws.take(self.num_classes);
        let mut u = ws.take(self.num_classes);
        self.hvp_with_scratch(w, x, v, out, &mut p, &mut u);
        ws.put(u);
        ws.put(p);
    }

    fn class_grad_ws(
        &self,
        w: &[f64],
        x: &[f64],
        class: usize,
        out: &mut [f64],
        ws: &mut Workspace,
    ) {
        // coeff = p_c − [c = class]: identical arithmetic to grad with a
        // one-hot label, without materializing the label.
        debug_assert_eq!(out.len(), self.num_params());
        let mut p = ws.take(self.num_classes);
        self.predict_proba(w, x, &mut p);
        let cols = self.cols();
        for c in 0..self.num_classes {
            let coeff = p[c] - if c == class { 1.0 } else { 0.0 };
            let row = &mut out[c * cols..(c + 1) * cols];
            for (ri, xi) in row[..self.dim].iter_mut().zip(x) {
                *ri = coeff * xi;
            }
            row[self.dim] = coeff;
        }
        ws.put(p);
    }

    fn scoring_kernel(&self) -> KernelPath {
        KernelPath::Gemm
    }

    fn kernel_backend(&self) -> KernelBackend {
        self.backend
    }

    /// Closed form via the rank-1 gradient identity: every per-sample
    /// gradient is `(p − y) ⊗ x̃`, so its dot with `v` only needs
    /// `u_c = v_c · x̃` — one row of `U = X̃Vᵀ`. Two block GEMMs (`P`
    /// and `U`) then give all C class dots per sample in O(C).
    #[allow(clippy::too_many_arguments)]
    fn score_block(
        &self,
        w: &[f64],
        data: &dyn DatasetStore,
        block: &[usize],
        v: &[f64],
        class_dots: &mut [f64],
        label_dots: &mut [f64],
        ws: &mut Workspace,
    ) -> KernelPath {
        let (d, c) = (self.dim, self.num_classes);
        debug_assert_eq!(class_dots.len(), block.len() * c);
        debug_assert_eq!(label_dots.len(), block.len());
        let bsz = block.len();
        let mut xb = ws.take_uninit(bsz * d);
        let mut pb = ws.take_uninit(bsz * c);
        let mut ub = ws.take_uninit(bsz * c);
        self.block_panels(w, data, block, v, &mut xb, &mut pb, &mut ub, ws);
        for (r, &i) in block.iter().enumerate() {
            let p = &pb[r * c..(r + 1) * c];
            let u = &ub[r * c..(r + 1) * c];
            // vᵀ(p − e_c)⊗x̃ = pᵀu − u_c; vᵀ(p − y)⊗x̃ = pᵀu − yᵀu.
            let pu = vector::dot(p, u);
            let y = data.label(i);
            let mut yu = 0.0;
            for (k, &uk) in u.iter().enumerate() {
                class_dots[r * c + k] = pu - uk;
                yu += y.prob(k) * uk;
            }
            label_dots[r] = pu - yu;
        }
        ws.put(ub);
        ws.put(pb);
        ws.put(xb);
        KernelPath::Gemm
    }

    /// Blocked closed-form minibatch gradient: every per-sample gradient
    /// is rank-1 (`(p − y) ⊗ x̃`), so a block needs exactly one `B×C`
    /// probability panel — the batched forward pass — after which the
    /// weighted sum `Σ_r γ_r (p_r − y_r) ⊗ x̃_r` is the `Xᵀ·P̃`
    /// accumulation with `P̃[r][k] = γ_r (p_r[k] − y_r[k])`, straight
    /// into `out`. No per-sample gradient vector is ever materialized,
    /// and the accumulation consumes two samples per pass so every
    /// `out`-row element is loaded and stored once per *pair* (two FMAs
    /// per round trip) instead of once per sample.
    #[allow(clippy::too_many_arguments)]
    fn grad_block(
        &self,
        w: &[f64],
        data: &dyn DatasetStore,
        batch: &[usize],
        gamma: f64,
        out: &mut [f64],
        ws: &mut Workspace,
    ) -> KernelPath {
        let (d, c, cols) = (self.dim, self.num_classes, self.cols());
        debug_assert_eq!(out.len(), self.num_params());
        out.fill(0.0);
        for chunk in batch.chunks(GRAD_BLOCK) {
            let bsz = chunk.len();
            let mut xb = ws.take_uninit(bsz * d);
            let mut pb = ws.take_uninit(bsz * c);
            let xs = block_features(data, chunk, d, &mut xb);
            self.proba_panel(w, xs, &mut pb[..bsz * c], ws);
            // Overwrite the probability panel with the weighted
            // coefficient panel P̃.
            for (r, &i) in chunk.iter().enumerate() {
                let weight = data.weight(i, gamma);
                let y = data.label(i);
                let p = &mut pb[r * c..(r + 1) * c];
                for (k, pk) in p.iter_mut().enumerate() {
                    *pk = weight * (*pk - y.prob(k));
                }
            }
            // out += X̃ᵀ·P̃, two samples per pass.
            let mut r = 0;
            while r + 1 < bsz {
                let x0 = &xs[r * d..(r + 1) * d];
                let x1 = &xs[(r + 1) * d..(r + 2) * d];
                for k in 0..c {
                    let s0 = pb[r * c + k];
                    let s1 = pb[(r + 1) * c + k];
                    let row = &mut out[k * cols..(k + 1) * cols];
                    for ((ri, &x0j), &x1j) in row[..d].iter_mut().zip(x0).zip(x1) {
                        *ri += s0 * x0j + s1 * x1j;
                    }
                    row[d] += s0 + s1;
                }
                r += 2;
            }
            if r < bsz {
                let x0 = &xs[r * d..(r + 1) * d];
                for k in 0..c {
                    let s0 = pb[r * c + k];
                    let row = &mut out[k * cols..(k + 1) * cols];
                    vector::axpy(s0, x0, &mut row[..d]);
                    row[d] += s0;
                }
            }
            ws.put(pb);
            ws.put(xb);
        }
        KernelPath::Gemm
    }

    /// Blocked closed-form HVP: for each sample the product is
    /// `s ⊗ x̃` with `s = γ_z · p ∘ (u − pᵀu)`, so one block reuses the
    /// same `P`/`U` panels as scoring and accumulates C axpys per
    /// sample.
    #[allow(clippy::too_many_arguments)]
    fn hvp_block(
        &self,
        w: &[f64],
        data: &dyn DatasetStore,
        batch: &[usize],
        gamma: f64,
        v: &[f64],
        out: &mut [f64],
        ws: &mut Workspace,
    ) -> KernelPath {
        let (d, c, cols) = (self.dim, self.num_classes, self.cols());
        debug_assert_eq!(out.len(), self.num_params());
        out.fill(0.0);
        for chunk in batch.chunks(HVP_BLOCK) {
            let bsz = chunk.len();
            let mut xb = ws.take_uninit(bsz * d);
            let mut pb = ws.take_uninit(bsz * c);
            let mut ub = ws.take_uninit(bsz * c);
            self.block_panels(w, data, chunk, v, &mut xb, &mut pb, &mut ub, ws);
            for (r, &i) in chunk.iter().enumerate() {
                let weight = data.weight(i, gamma);
                let p = &pb[r * c..(r + 1) * c];
                let u = &ub[r * c..(r + 1) * c];
                let pu = vector::dot(p, u);
                let xrow = data.feature(i);
                for k in 0..c {
                    let s = weight * (p[k] * (u[k] - pu));
                    let row = &mut out[k * cols..(k + 1) * cols];
                    vector::axpy(s, xrow, &mut row[..d]);
                    row[d] += s;
                }
            }
            ws.put(ub);
            ws.put(pb);
            ws.put(xb);
        }
        KernelPath::Gemm
    }

    fn hessian_norm(&self, w: &[f64], x: &[f64], _y: &SoftLabel) -> f64 {
        let mut p = vec![0.0; self.num_classes];
        self.predict_proba(w, x, &mut p);
        let xt_norm_sq = vector::norm2_sq(x) + 1.0; // ‖x̃‖² with bias 1
        Self::core_norm(&p) * xt_norm_sq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{grad_check, hvp_check};
    use chef_linalg::cg::LinearOperator;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn rand_vec(n: usize, rng: &mut SmallRng) -> Vec<f64> {
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn zero_params_give_uniform_prediction() {
        let m = LogisticRegression::new(3, 4);
        let w = m.init_params();
        let p = m.predict(&w, &[0.5, -0.2, 1.0]);
        for v in &p {
            assert!((v - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = SmallRng::seed_from_u64(1);
        for trial in 0..10 {
            let m = LogisticRegression::new(4, 3);
            let w = rand_vec(m.num_params(), &mut rng);
            let x = rand_vec(4, &mut rng);
            let y = SoftLabel::from_weights(&[
                rng.gen_range(0.01..1.0),
                rng.gen_range(0.01..1.0),
                rng.gen_range(0.01..1.0),
            ]);
            let err = grad_check(&m, &w, &x, &y, 1e-6);
            assert!(err < 1e-6, "trial {trial}: grad error {err}");
        }
    }

    #[test]
    fn hvp_matches_finite_differences() {
        let mut rng = SmallRng::seed_from_u64(2);
        for trial in 0..10 {
            let m = LogisticRegression::new(3, 3);
            let w = rand_vec(m.num_params(), &mut rng);
            let x = rand_vec(3, &mut rng);
            let v = rand_vec(m.num_params(), &mut rng);
            let y = SoftLabel::uniform(3);
            let err = hvp_check(&m, &w, &x, &y, &v, 1e-5);
            assert!(err < 1e-6, "trial {trial}: hvp error {err}");
        }
    }

    #[test]
    fn class_grad_is_grad_with_onehot() {
        let mut rng = SmallRng::seed_from_u64(3);
        let m = LogisticRegression::new(3, 3);
        let w = rand_vec(m.num_params(), &mut rng);
        let x = rand_vec(3, &mut rng);
        let mut g1 = vec![0.0; m.num_params()];
        let mut g2 = vec![0.0; m.num_params()];
        for c in 0..3 {
            m.class_grad(&w, &x, c, &mut g1);
            m.grad(&w, &x, &SoftLabel::onehot(c, 3), &mut g2);
            assert_eq!(g1, g2);
        }
    }

    #[test]
    fn class_grad_matches_fd_of_neg_log_prob() {
        // ∇_w (−log p⁽ᶜ⁾) checked by central differences directly.
        let mut rng = SmallRng::seed_from_u64(4);
        let m = LogisticRegression::new(2, 3);
        let w = rand_vec(m.num_params(), &mut rng);
        let x = rand_vec(2, &mut rng);
        let c = 1;
        let mut g = vec![0.0; m.num_params()];
        m.class_grad(&w, &x, c, &mut g);
        let mut wbuf = w.clone();
        let eps = 1e-6;
        for i in 0..w.len() {
            wbuf[i] = w[i] + eps;
            let lp = -m.predict(&wbuf, &x)[c].ln();
            wbuf[i] = w[i] - eps;
            let lm = -m.predict(&wbuf, &x)[c].ln();
            wbuf[i] = w[i];
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - g[i]).abs() < 1e-6, "coord {i}");
        }
    }

    /// Dense per-sample Hessian assembled from HVPs (test oracle).
    struct SampleHessian<'a> {
        m: &'a LogisticRegression,
        w: &'a [f64],
        x: &'a [f64],
        y: &'a SoftLabel,
    }

    impl LinearOperator for SampleHessian<'_> {
        fn dim(&self) -> usize {
            self.m.num_params()
        }
        fn apply(&self, v: &[f64], out: &mut [f64]) {
            self.m.hvp(self.w, self.x, self.y, v, out);
        }
    }

    #[test]
    fn hessian_norm_matches_power_method_on_full_hessian() {
        let mut rng = SmallRng::seed_from_u64(5);
        for trial in 0..5 {
            let m = LogisticRegression::new(3, 3);
            let w = rand_vec(m.num_params(), &mut rng);
            let x = rand_vec(3, &mut rng);
            let y = SoftLabel::uniform(3);
            let closed = m.hessian_norm(&w, &x, &y);
            let op = SampleHessian {
                m: &m,
                w: &w,
                x: &x,
                y: &y,
            };
            let full = power_method(
                &op,
                &PowerConfig {
                    max_iters: 2000,
                    tol: 1e-13,
                    ..PowerConfig::default()
                },
            )
            .eigenvalue;
            assert!(
                (closed - full).abs() < 1e-6 * closed.max(1.0),
                "trial {trial}: closed {closed} vs full {full}"
            );
        }
    }

    #[test]
    fn binary_core_norm_matches_power_method() {
        let mut rng = SmallRng::seed_from_u64(6);
        let m = LogisticRegression::new(4, 2);
        let w = rand_vec(m.num_params(), &mut rng);
        let x = rand_vec(4, &mut rng);
        let y = SoftLabel::uniform(2);
        let closed = m.hessian_norm(&w, &x, &y);
        let op = SampleHessian {
            m: &m,
            w: &w,
            x: &x,
            y: &y,
        };
        let full = power_method(&op, &PowerConfig::default()).eigenvalue;
        assert!((closed - full).abs() < 1e-7 * closed.max(1.0));
    }

    #[test]
    fn loss_decreases_along_negative_gradient() {
        let mut rng = SmallRng::seed_from_u64(7);
        let m = LogisticRegression::new(3, 2);
        let w = rand_vec(m.num_params(), &mut rng);
        let x = rand_vec(3, &mut rng);
        let y = SoftLabel::onehot(0, 2);
        let mut g = vec![0.0; m.num_params()];
        m.grad(&w, &x, &y, &mut g);
        let l0 = m.loss(&w, &x, &y);
        let w2: Vec<f64> = w.iter().zip(&g).map(|(wi, gi)| wi - 0.01 * gi).collect();
        assert!(m.loss(&w2, &x, &y) < l0);
    }
}
