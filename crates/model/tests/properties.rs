//! Property-based tests for the model substrate.

use chef_linalg::vector;
use chef_model::model::{grad_check, hvp_check};
use chef_model::{LogisticRegression, Mlp, Model, SoftLabel};
use proptest::prelude::*;

fn soft_label(c: usize) -> impl Strategy<Value = SoftLabel> {
    prop::collection::vec(0.01f64..1.0, c).prop_map(|w| SoftLabel::from_weights(&w))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn logreg_gradient_matches_finite_differences(
        w in prop::collection::vec(-2.0f64..2.0, 3 * 3),
        x in prop::collection::vec(-2.0f64..2.0, 2),
        y in soft_label(3),
    ) {
        let model = LogisticRegression::new(2, 3);
        prop_assert!(grad_check(&model, &w, &x, &y, 1e-6) < 1e-5);
    }

    #[test]
    fn logreg_hvp_matches_finite_differences(
        w in prop::collection::vec(-2.0f64..2.0, 3 * 3),
        x in prop::collection::vec(-2.0f64..2.0, 2),
        v in prop::collection::vec(-1.0f64..1.0, 3 * 3),
        y in soft_label(3),
    ) {
        let model = LogisticRegression::new(2, 3);
        prop_assert!(hvp_check(&model, &w, &x, &y, &v, 1e-5) < 1e-5);
    }

    #[test]
    fn logreg_predictions_live_on_the_simplex(
        w in prop::collection::vec(-5.0f64..5.0, 4 * 2),
        x in prop::collection::vec(-5.0f64..5.0, 3),
    ) {
        let model = LogisticRegression::new(3, 2);
        let p = model.predict(&w, &x);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn logreg_hessian_is_psd_and_norm_dominates_rayleigh(
        w in prop::collection::vec(-2.0f64..2.0, 2 * 3),
        x in prop::collection::vec(-2.0f64..2.0, 2),
        v in prop::collection::vec(-1.0f64..1.0, 2 * 3),
    ) {
        let model = LogisticRegression::new(2, 2);
        let y = SoftLabel::uniform(2);
        let vn = vector::norm2_sq(&v);
        prop_assume!(vn > 1e-6);
        let mut hv = vec![0.0; v.len()];
        model.hvp(&w, &x, &y, &v, &mut hv);
        let quad = vector::dot(&v, &hv);
        prop_assert!(quad >= -1e-10, "CE Hessian not PSD: {quad}");
        let norm = model.hessian_norm(&w, &x, &y);
        prop_assert!(norm + 1e-9 >= quad / vn, "norm {norm} < Rayleigh {}", quad / vn);
    }

    #[test]
    fn logreg_loss_is_nonnegative_and_convexity_inequality_holds(
        w1 in prop::collection::vec(-2.0f64..2.0, 2 * 3),
        w2 in prop::collection::vec(-2.0f64..2.0, 2 * 3),
        x in prop::collection::vec(-2.0f64..2.0, 2),
        y in soft_label(2),
        t in 0.0f64..1.0,
    ) {
        let model = LogisticRegression::new(2, 2);
        let l1 = model.loss(&w1, &x, &y);
        let l2 = model.loss(&w2, &x, &y);
        prop_assert!(l1 >= 0.0 && l2 >= 0.0);
        // Cross-entropy of softmax is convex in w:
        // F(t·w1 + (1−t)·w2) ≤ t·F(w1) + (1−t)·F(w2).
        let mid: Vec<f64> = w1.iter().zip(&w2).map(|(a, b)| t * a + (1.0 - t) * b).collect();
        prop_assert!(model.loss(&mid, &x, &y) <= t * l1 + (1.0 - t) * l2 + 1e-9);
    }

    #[test]
    fn mlp_backprop_matches_finite_differences(
        seed in 0u64..1000,
        x in prop::collection::vec(-1.5f64..1.5, 3),
        y in soft_label(2),
    ) {
        let model = Mlp::new(3, 4, 2);
        let w = model.init_params(seed);
        prop_assert!(grad_check(&model, &w, &x, &y, 1e-6) < 1e-4);
    }

    #[test]
    fn class_grad_columns_assemble_the_label_jacobian(
        w in prop::collection::vec(-2.0f64..2.0, 2 * 3),
        x in prop::collection::vec(-2.0f64..2.0, 2),
        y in soft_label(2),
    ) {
        // ∇_wF(w, (x, y)) = Σ_c y_c · (−∇_w log p⁽ᶜ⁾): the per-class
        // gradients are an exact basis for the gradient at ANY soft label.
        let model = LogisticRegression::new(2, 2);
        let mut expect = vec![0.0; model.num_params()];
        let mut col = vec![0.0; model.num_params()];
        for c in 0..2 {
            model.class_grad(&w, &x, c, &mut col);
            vector::axpy(y.prob(c), &col, &mut expect);
        }
        let mut got = vec![0.0; model.num_params()];
        model.grad(&w, &x, &y, &mut got);
        for (a, b) in got.iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn soft_label_delta_is_consistent(
        y in soft_label(4),
        c in 0usize..4,
    ) {
        let d = y.delta_to(c);
        prop_assert!((d.iter().sum::<f64>()).abs() < 1e-9);
        let onehot = SoftLabel::onehot(c, 4);
        for (k, &dk) in d.iter().enumerate() {
            prop_assert!((y.prob(k) + dk - onehot.prob(k)).abs() < 1e-12);
        }
    }
}
