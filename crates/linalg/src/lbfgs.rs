//! L-BFGS history buffer and forward Hessian-vector products.
//!
//! DeltaGrad (Algorithm 2 of the CHEF paper, adapted from Wu et al., ICML
//! 2020) approximates the gradient at the incrementally-updated parameters
//! `w_tᴵ` via the Cauchy mean-value theorem:
//!
//! ```text
//! ∇F(w_tᴵ, B_t) ≈ B_t (w_tᴵ − w_t) + ∇F(w_t, B_t)        (paper Eq. 5)
//! ```
//!
//! where `B_t` is an approximate Hessian maintained from the last `m₀`
//! *explicitly* evaluated parameter/gradient difference pairs
//! `ΔW[r] = w_rᴵ − w_r`, `ΔG[r] = ∇F(w_rᴵ) − ∇F(w_r)`.
//!
//! Classic L-BFGS two-loop recursion yields the *inverse* product `H⁻¹v`;
//! DeltaGrad needs the *forward* product `B·v`. We apply the BFGS update
//!
//! ```text
//! B_{i+1} = B_i − (B_i s_i s_iᵀ B_i)/(s_iᵀ B_i s_i) + (y_i y_iᵀ)/(y_iᵀ s_i)
//! ```
//!
//! lazily to the probe vector (and to the pending `s_j`), starting from
//! `B₀ = γI` with `γ = y_lastᵀ s_last / s_lastᵀ s_last`. The cost is
//! `O(m₀² · m)` per product — negligible because the paper uses `m₀ = 2`.
//!
//! [`LbfgsBuffer::inv_hessian_vec`] provides the two-loop `B⁻¹v` as well,
//! seeded with `H₀ = B₀⁻¹` so forward and inverse products are exact
//! inverses of each other (see `tests/properties.rs` for the dense-solve
//! property tests).

use crate::vector;

/// Bounded history of `(s = Δw, y = Δg)` curvature pairs plus forward
/// quasi-Hessian products, as used by DeltaGrad.
#[derive(Debug, Clone)]
pub struct LbfgsBuffer {
    capacity: usize,
    dim: usize,
    s_list: Vec<Vec<f64>>,
    y_list: Vec<Vec<f64>>,
}

impl LbfgsBuffer {
    /// Create a buffer holding up to `capacity` curvature pairs for
    /// `dim`-dimensional parameters.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, dim: usize) -> Self {
        assert!(capacity > 0, "LbfgsBuffer: capacity must be positive");
        Self {
            capacity,
            dim,
            s_list: Vec::with_capacity(capacity),
            y_list: Vec::with_capacity(capacity),
        }
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.s_list.len()
    }

    /// Whether no curvature pairs are stored yet.
    pub fn is_empty(&self) -> bool {
        self.s_list.is_empty()
    }

    /// Parameter dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Push a curvature pair, evicting the oldest if at capacity.
    ///
    /// Pairs with non-positive or numerically tiny curvature `yᵀs` are
    /// skipped: they would make the implied Hessian indefinite. The
    /// paper's strong-convexity assumption guarantees `yᵀs > 0`, so a skip
    /// only ever absorbs pure numerical noise (e.g. `s ≈ 0`).
    ///
    /// Returns `true` if the pair was stored.
    pub fn push(&mut self, s: &[f64], y: &[f64]) -> bool {
        assert_eq!(s.len(), self.dim, "LbfgsBuffer::push: s dimension");
        assert_eq!(y.len(), self.dim, "LbfgsBuffer::push: y dimension");
        let ys = vector::dot(y, s);
        let ss = vector::norm2_sq(s);
        if ss == 0.0 || ys <= 1e-12 * ss {
            return false;
        }
        if self.s_list.len() == self.capacity {
            self.s_list.remove(0);
            self.y_list.remove(0);
        }
        self.s_list.push(s.to_vec());
        self.y_list.push(y.to_vec());
        true
    }

    /// Forward product `B v` with the current quasi-Hessian.
    ///
    /// With an empty history this is the identity (`B₀ = I`), which makes
    /// Eq. 5 degrade gracefully to a first-order extrapolation.
    pub fn hessian_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.dim, "LbfgsBuffer::hessian_vec: dimension");
        let k = self.s_list.len();
        if k == 0 {
            return v.to_vec();
        }

        let s_last = &self.s_list[k - 1];
        let y_last = &self.y_list[k - 1];
        let gamma = vector::dot(y_last, s_last) / vector::norm2_sq(s_last);

        // bs[j] tracks B_i s_j as the update index i advances; bv tracks
        // B_i v. Both start at B₀ = γI.
        let mut bs: Vec<Vec<f64>> = self
            .s_list
            .iter()
            .map(|s| {
                let mut t = s.clone();
                vector::scale(gamma, &mut t);
                t
            })
            .collect();
        let mut bv: Vec<f64> = {
            let mut t = v.to_vec();
            vector::scale(gamma, &mut t);
            t
        };

        for i in 0..k {
            let a = std::mem::take(&mut bs[i]); // a = B_i s_i
            let s_i = &self.s_list[i];
            let y_i = &self.y_list[i];
            let sa = vector::dot(s_i, &a);
            let ys = vector::dot(y_i, s_i);
            if sa <= 0.0 || ys <= 0.0 {
                continue; // degenerate pair; filtered at push, kept defensive
            }
            // B_{i+1} x = B_i x − a (aᵀx)/sa + y (yᵀx)/ys, for any x.
            let apply = |bx: &mut [f64], x: &[f64]| {
                let ca = -vector::dot(&a, x) / sa;
                let cy = vector::dot(y_i, x) / ys;
                vector::axpy(ca, &a, bx);
                vector::axpy(cy, y_i, bx);
            };
            apply(&mut bv, v);
            // Split so we can mutate later entries while reading s_list.
            #[allow(clippy::needless_range_loop)]
            for j in (i + 1)..k {
                let (x, bx): (&[f64], _) = (&self.s_list[j], &mut bs[j]);
                let ca = -vector::dot(&a, x) / sa;
                let cy = vector::dot(y_i, x) / ys;
                vector::axpy(ca, &a, bx);
                vector::axpy(cy, y_i, bx);
            }
        }

        bv
    }

    /// Inverse product `B⁻¹ v` via the classic two-loop recursion.
    ///
    /// The recursion builds `H_k = B_k⁻¹` from the same `(s, y)` pairs as
    /// [`Self::hessian_vec`], seeded with `H₀ = (s_lastᵀ s_last /
    /// y_lastᵀ s_last) I` — exactly `B₀⁻¹` for the forward product's
    /// `B₀ = γI` — so the two products are exact inverses of each other
    /// (up to round-off), not merely approximations of the same Hessian.
    /// Checkpoint resume relies on this pairing: a restored history
    /// buffer reproduces bit-identical replay corrections.
    ///
    /// With an empty history this is the identity, matching
    /// [`Self::hessian_vec`].
    ///
    /// ```
    /// use chef_linalg::LbfgsBuffer;
    ///
    /// let mut buf = LbfgsBuffer::new(2, 2);
    /// buf.push(&[1.0, 0.0], &[3.0, 1.0]); // curvature of A = [[3,1],[1,2]]
    /// buf.push(&[0.0, 1.0], &[1.0, 2.0]);
    /// let v = [2.0, -1.0];
    /// let hv = buf.inv_hessian_vec(&v);
    /// let back = buf.hessian_vec(&hv); // B (B⁻¹ v) = v
    /// assert!((back[0] - v[0]).abs() < 1e-10);
    /// assert!((back[1] - v[1]).abs() < 1e-10);
    /// ```
    pub fn inv_hessian_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.dim, "LbfgsBuffer::inv_hessian_vec: dimension");
        let k = self.s_list.len();
        if k == 0 {
            return v.to_vec();
        }

        let mut q = v.to_vec();
        let mut alpha = vec![0.0; k];
        let mut rho = vec![0.0; k];
        for i in (0..k).rev() {
            let s_i = &self.s_list[i];
            let y_i = &self.y_list[i];
            rho[i] = 1.0 / vector::dot(y_i, s_i); // ys > 0 enforced at push
            alpha[i] = rho[i] * vector::dot(s_i, &q);
            vector::axpy(-alpha[i], y_i, &mut q);
        }

        let s_last = &self.s_list[k - 1];
        let y_last = &self.y_list[k - 1];
        let gamma_inv = vector::norm2_sq(s_last) / vector::dot(y_last, s_last);
        vector::scale(gamma_inv, &mut q);

        for i in 0..k {
            let s_i = &self.s_list[i];
            let y_i = &self.y_list[i];
            let beta = rho[i] * vector::dot(y_i, &q);
            vector::axpy(alpha[i] - beta, s_i, &mut q);
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_buffer_is_identity() {
        let buf = LbfgsBuffer::new(4, 3);
        let v = [1.0, -2.0, 0.5];
        assert_eq!(buf.hessian_vec(&v), v.to_vec());
    }

    #[test]
    fn secant_condition_most_recent_pair() {
        // For any history, BFGS guarantees B s_last = y_last exactly.
        let mut rng = SmallRng::seed_from_u64(42);
        let dim = 6;
        let a = {
            // SPD matrix to generate consistent curvature pairs y = A s.
            let m = Matrix::from_vec(
                dim,
                dim,
                (0..dim * dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            );
            let mut a = m.transpose().matmul(&m);
            for i in 0..dim {
                a[(i, i)] += dim as f64;
            }
            a
        };
        let mut buf = LbfgsBuffer::new(3, dim);
        let mut last_s = vec![0.0; dim];
        let mut last_y = vec![0.0; dim];
        for _ in 0..5 {
            let s: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut y = vec![0.0; dim];
            a.matvec(&s, &mut y);
            assert!(buf.push(&s, &y));
            last_s = s;
            last_y = y;
        }
        let bs = buf.hessian_vec(&last_s);
        for (got, want) in bs.iter().zip(&last_y) {
            assert!(
                (got - want).abs() < 1e-8,
                "secant violated: {got} vs {want}"
            );
        }
    }

    #[test]
    fn identity_curvature_stays_identity() {
        // y = s means the underlying Hessian is I; B must act as I.
        let mut buf = LbfgsBuffer::new(4, 3);
        buf.push(&[1.0, 0.0, 0.0], &[1.0, 0.0, 0.0]);
        buf.push(&[0.0, 2.0, 0.0], &[0.0, 2.0, 0.0]);
        let v = [3.0, -1.0, 2.0];
        let bv = buf.hessian_vec(&v);
        for (got, want) in bv.iter().zip(&v) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_nonpositive_curvature() {
        let mut buf = LbfgsBuffer::new(4, 2);
        assert!(!buf.push(&[1.0, 0.0], &[-1.0, 0.0]));
        assert!(!buf.push(&[0.0, 0.0], &[0.0, 0.0]));
        assert!(buf.is_empty());
    }

    #[test]
    fn eviction_keeps_capacity() {
        let mut buf = LbfgsBuffer::new(2, 2);
        for i in 1..=5 {
            let s = [i as f64, 0.0];
            buf.push(&s, &s);
        }
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn product_is_positive_definite_quadratic_form() {
        let mut rng = SmallRng::seed_from_u64(7);
        let dim = 5;
        let mut buf = LbfgsBuffer::new(3, dim);
        for _ in 0..3 {
            let s: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            // y = 2s + small perturbation keeps yᵀs > 0.
            let y: Vec<f64> = s.iter().map(|v| 2.0 * v + 0.01).collect();
            buf.push(&s, &y);
        }
        for _ in 0..10 {
            let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            if vector::norm2(&v) < 1e-6 {
                continue;
            }
            let bv = buf.hessian_vec(&v);
            assert!(vector::dot(&v, &bv) > 0.0, "B lost positive definiteness");
        }
    }

    #[test]
    fn inverse_empty_buffer_is_identity() {
        let buf = LbfgsBuffer::new(4, 3);
        let v = [1.0, -2.0, 0.5];
        assert_eq!(buf.inv_hessian_vec(&v), v.to_vec());
    }

    #[test]
    fn inverse_undoes_forward_product() {
        let mut rng = SmallRng::seed_from_u64(11);
        let dim = 6;
        let mut buf = LbfgsBuffer::new(3, dim);
        for _ in 0..5 {
            let s: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let y: Vec<f64> = s.iter().map(|v| 1.5 * v + 0.02).collect();
            buf.push(&s, &y);
        }
        for _ in 0..10 {
            let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let round_trip = buf.hessian_vec(&buf.inv_hessian_vec(&v));
            for (got, want) in round_trip.iter().zip(&v) {
                assert!((got - want).abs() < 1e-9, "{got} vs {want}");
            }
        }
    }

    #[test]
    fn inverse_secant_condition_most_recent_pair() {
        // The dual secant condition: H y_last = s_last exactly.
        let a = Matrix::from_rows(&[vec![3.0, 1.0], vec![1.0, 2.0]]);
        let mut buf = LbfgsBuffer::new(2, 2);
        let mut last_s = vec![0.0; 2];
        let mut last_y = vec![0.0; 2];
        for s in [[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]] {
            let mut y = vec![0.0; 2];
            a.matvec(&s, &mut y);
            buf.push(&s, &y);
            last_s = s.to_vec();
            last_y = y;
        }
        let hy = buf.inv_hessian_vec(&last_y);
        for (got, want) in hy.iter().zip(&last_s) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn quadratic_model_approximates_true_hessian_on_span() {
        // For F(w) = ½ wᵀ A w the curvature pairs satisfy y = A s; after
        // dim independent pairs the quasi-Hessian should act like A on the
        // most recent direction and stay close elsewhere.
        let a = Matrix::from_rows(&[vec![3.0, 1.0], vec![1.0, 2.0]]);
        let mut buf = LbfgsBuffer::new(2, 2);
        for s in [[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]] {
            let mut y = vec![0.0; 2];
            a.matvec(&s, &mut y);
            buf.push(&s, &y);
        }
        // Most recent direction must be exact (secant).
        let bv = buf.hessian_vec(&[1.0, 1.0]);
        assert!((bv[0] - 4.0).abs() < 1e-9 && (bv[1] - 3.0).abs() < 1e-9);
    }
}
