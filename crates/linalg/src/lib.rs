//! # chef-linalg
//!
//! Dense linear-algebra substrate for the CHEF label-cleaning pipeline.
//!
//! The CHEF paper (Wu, Weimer, Davidson; VLDB 2021) needs four numerical
//! kernels that are deliberately implemented here from scratch rather than
//! pulled from an external BLAS:
//!
//! * plain dense vector/matrix arithmetic ([`vector`], [`matrix`]),
//! * a **conjugate-gradient** solver used to form `H⁻¹ v` products without
//!   materializing the Hessian (paper §4.1.1, [`cg`]),
//! * the **power method** used to pre-compute per-sample Hessian norms in
//!   the Increm-Infl initialization step (paper Appendix D, [`power`]),
//! * the **L-BFGS two-loop recursion** used by DeltaGrad to approximate
//!   Hessian-vector products from cached parameter/gradient differences
//!   (paper Algorithm 2, [`lbfgs`]),
//! * cache-blocked **batch kernels** (`A·Bᵀ` GEMM, bias-folded affine
//!   blocks, gathered matvecs) plus a reusable scratch [`Workspace`]
//!   backing the batched Infl scoring path ([`kernels`]).
//!
//! Everything operates on `f64` slices; the parameter dimension in CHEF is
//! small (a flattened logistic-regression weight matrix), so simple
//! cache-friendly loops beat anything fancier at this scale.

pub mod cg;
pub mod kernels;
pub mod lbfgs;
pub mod matrix;
pub mod power;
pub mod stats;
pub mod vector;

pub use cg::{conjugate_gradient, conjugate_gradient_from, CgConfig, CgOutcome, LinearOperator};
pub use kernels::{KernelBackend, Workspace};
pub use lbfgs::LbfgsBuffer;
pub use matrix::Matrix;
pub use power::{power_method, PowerConfig, PowerOutcome};
pub use stats::{mean, mean_std, RunningStats};
