//! Power iteration for the dominant eigenvalue of a symmetric operator.
//!
//! Appendix D of the CHEF paper pre-computes the L2 norm of per-sample
//! Hessian matrices `‖H(w⁽⁰⁾, z)‖` in the initialization step using the
//! power method (von Mises iteration): for a symmetric positive
//! semi-definite matrix the L2 norm equals the largest eigenvalue, which
//! power iteration recovers from repeated Hessian-vector products
//! (Algorithm 3 in the paper).

use crate::cg::LinearOperator;
use crate::vector;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`power_method`].
#[derive(Debug, Clone, Copy)]
pub struct PowerConfig {
    /// Maximum iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the change of the Rayleigh quotient.
    pub tol: f64,
    /// Seed for the random start vector.
    pub seed: u64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        Self {
            max_iters: 200,
            tol: 1e-10,
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

/// Result of a power-method run.
#[derive(Debug, Clone)]
pub struct PowerOutcome {
    /// Estimated eigenvalue of largest magnitude (the L2 norm for PSD
    /// operators).
    pub eigenvalue: f64,
    /// The corresponding unit eigenvector estimate.
    pub eigenvector: Vec<f64>,
    /// Iterations performed.
    pub iters: usize,
    /// Whether the Rayleigh quotient stabilized within tolerance.
    pub converged: bool,
}

/// Estimate the dominant eigenvalue of a symmetric operator.
///
/// This is Algorithm 3 of the CHEF paper: repeatedly apply the operator,
/// renormalize, and read off the Rayleigh quotient `gᵀAg / gᵀg`. Returns
/// eigenvalue 0 for the zero operator.
///
/// ```
/// use chef_linalg::{power_method, PowerConfig, Matrix};
///
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
/// let out = power_method(&a, &PowerConfig::default());
/// assert!((out.eigenvalue - 3.0).abs() < 1e-8);
/// ```
pub fn power_method<Op: LinearOperator + ?Sized>(op: &Op, cfg: &PowerConfig) -> PowerOutcome {
    let n = op.dim();
    assert!(n > 0, "power_method: zero-dimensional operator");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut g: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let norm = vector::norm2(&g);
    // A random vector is almost surely nonzero, but guard anyway.
    if norm == 0.0 {
        g[0] = 1.0;
    } else {
        vector::scale(1.0 / norm, &mut g);
    }

    let mut ag = vec![0.0; n];
    let mut prev_lambda = f64::INFINITY;
    let mut lambda = 0.0;
    let mut iters = 0;
    let mut converged = false;

    for _ in 0..cfg.max_iters {
        op.apply(&g, &mut ag);
        lambda = vector::dot(&g, &ag); // Rayleigh quotient, ‖g‖ = 1.
        iters += 1;
        let ag_norm = vector::norm2(&ag);
        if ag_norm <= f64::EPSILON {
            // Operator annihilates g: eigenvalue 0 (zero/degenerate op).
            lambda = 0.0;
            converged = true;
            break;
        }
        g.copy_from_slice(&ag);
        vector::scale(1.0 / ag_norm, &mut g);
        if (lambda - prev_lambda).abs() <= cfg.tol * lambda.abs().max(1.0) {
            converged = true;
            break;
        }
        prev_lambda = lambda;
    }

    PowerOutcome {
        eigenvalue: lambda,
        eigenvector: g,
        iters,
        converged,
    }
}

/// Exact largest eigenvalue of a symmetric PSD rank-structured 2-class
/// softmax core `diag(p) − p pᵀ` for the binary case, used as a fast path
/// and as a test oracle. For C = 2 the matrix is
/// `[[p₀(1−p₀), −p₀p₁], [−p₀p₁, p₁(1−p₁)]]` with eigenvalues
/// `{0, p₀p₁·2}`... more precisely `{0, p₀(1−p₀) + p₁(1−p₁)}` since the
/// trace is split between a zero eigenvalue (eigenvector `p`-orthogonal
/// direction `(1,1)`) and the rest.
pub fn softmax_core_norm_binary(p0: f64) -> f64 {
    let p1 = 1.0 - p0;
    // trace = p0(1-p0) + p1(1-p1) = 2 p0 p1; one eigenvalue is 0.
    p0 * (1.0 - p0) + p1 * (1.0 - p1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn diagonal_dominant_eigenvalue() {
        let a = Matrix::from_rows(&[
            vec![5.0, 0.0, 0.0],
            vec![0.0, 2.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ]);
        let out = power_method(&a, &PowerConfig::default());
        assert!(out.converged);
        assert!((out.eigenvalue - 5.0).abs() < 1e-8);
        // Eigenvector is ±e₀.
        assert!((out.eigenvector[0].abs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn known_symmetric_2x2() {
        // [[2,1],[1,2]] has eigenvalues {1, 3}.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let out = power_method(&a, &PowerConfig::default());
        assert!((out.eigenvalue - 3.0).abs() < 1e-8);
    }

    #[test]
    fn zero_operator() {
        let a = Matrix::zeros(3, 3);
        let out = power_method(&a, &PowerConfig::default());
        assert_eq!(out.eigenvalue, 0.0);
        assert!(out.converged);
    }

    #[test]
    fn rank_one_psd() {
        // x xᵀ with x = (3,4): top eigenvalue ‖x‖² = 25.
        let mut a = Matrix::zeros(2, 2);
        a.add_outer(1.0, &[3.0, 4.0], &[3.0, 4.0]);
        let out = power_method(&a, &PowerConfig::default());
        assert!((out.eigenvalue - 25.0).abs() < 1e-8);
    }

    #[test]
    fn softmax_core_oracle_matches_power_method() {
        for &p0 in &[0.1, 0.3, 0.5, 0.9] {
            let p1 = 1.0 - p0;
            let a = Matrix::from_rows(&[
                vec![p0 * (1.0 - p0), -p0 * p1],
                vec![-p0 * p1, p1 * (1.0 - p1)],
            ]);
            let out = power_method(&a, &PowerConfig::default());
            assert!(
                (out.eigenvalue - softmax_core_norm_binary(p0)).abs() < 1e-8,
                "p0={p0}"
            );
        }
    }

    #[test]
    fn eigenvector_satisfies_definition() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ]);
        let cfg = PowerConfig {
            max_iters: 2000,
            tol: 1e-14,
            ..PowerConfig::default()
        };
        let out = power_method(&a, &cfg);
        let mut av = vec![0.0; 3];
        a.matvec(&out.eigenvector, &mut av);
        for (avi, vi) in av.iter().zip(&out.eigenvector) {
            assert!((avi - out.eigenvalue * vi).abs() < 1e-5);
        }
    }
}
