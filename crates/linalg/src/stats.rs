//! Small statistics helpers for the experiment harness.
//!
//! The paper reports every table cell as `mean ± std` over repeated runs;
//! [`RunningStats`] (Welford's online algorithm) provides those summaries
//! without storing samples, and [`mean_std`] is the batch convenience
//! wrapper used by the harness.

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance with Bessel's correction (0 with < 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Format as the paper's `mean±std` cell style.
    pub fn cell(&self) -> String {
        format!("{:.4}\u{b1}{:.4}", self.mean(), self.std_dev())
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// `(mean, sample std)` of a slice.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    let mut s = RunningStats::new();
    for &x in xs {
        s.push(x);
    }
    (s.mean(), s.std_dev())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn known_values() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance 4 → sample variance 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn single_observation() {
        let mut s = RunningStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn batch_matches_online() {
        let xs = [0.1, 0.9, -0.4, 2.2, 1.1];
        let (m, sd) = mean_std(&xs);
        let mut s = RunningStats::new();
        xs.iter().for_each(|&x| s.push(x));
        assert!((m - s.mean()).abs() < 1e-12);
        assert!((sd - s.std_dev()).abs() < 1e-12);
        assert!((mean(&xs) - m).abs() < 1e-12);
    }

    #[test]
    fn cell_formatting() {
        let mut s = RunningStats::new();
        s.push(0.5);
        s.push(0.7);
        assert!(s.cell().starts_with("0.6000"));
        assert!(s.cell().contains('\u{b1}'));
    }
}
