//! Conjugate-gradient solver for symmetric positive-definite systems.
//!
//! CHEF never materializes the training-set Hessian `H(w)` (dimension m×m
//! with m the flattened parameter count). Instead, §4.1.1 of the paper
//! follows Koh & Liang and computes `vᵀ = −∇F(w, Z_val)ᵀ H⁻¹(w)` with the
//! conjugate-gradient method, where each iteration only needs one
//! Hessian-vector product. The [`LinearOperator`] trait abstracts that
//! product so models can supply exact closed-form HVPs (logistic
//! regression) or finite-difference HVPs (the MLP of Appendix G.2).

use crate::vector;

/// A symmetric positive-(semi)definite linear operator `x ↦ A x`.
pub trait LinearOperator {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;
    /// Compute `out = A x`.
    fn apply(&self, x: &[f64], out: &mut [f64]);
}

/// A dense matrix is trivially a linear operator (used in tests/benches).
impl LinearOperator for crate::Matrix {
    fn dim(&self) -> usize {
        debug_assert_eq!(self.rows(), self.cols());
        self.rows()
    }
    fn apply(&self, x: &[f64], out: &mut [f64]) {
        self.matvec(x, out);
    }
}

/// Configuration for [`conjugate_gradient`].
#[derive(Debug, Clone, Copy)]
pub struct CgConfig {
    /// Maximum number of CG iterations (a cap of `dim` is also applied
    /// implicitly by CG's exact-termination property in exact arithmetic).
    pub max_iters: usize,
    /// Terminate when `‖A x − b‖ ≤ tol · max(‖b‖, 1)`.
    pub tol: f64,
    /// Tikhonov damping added to the operator: solves `(A + damping·I) x = b`.
    /// Used for the non-convex MLP path where `A` may be indefinite.
    pub damping: f64,
}

impl Default for CgConfig {
    fn default() -> Self {
        Self {
            max_iters: 200,
            tol: 1e-8,
            damping: 0.0,
        }
    }
}

/// Result of a CG solve.
#[derive(Debug, Clone)]
pub struct CgOutcome {
    /// The solution estimate.
    pub x: Vec<f64>,
    /// Iterations actually performed.
    pub iters: usize,
    /// Final residual norm `‖b − A x‖`.
    pub residual_norm: f64,
    /// Whether the tolerance was met before hitting `max_iters`.
    pub converged: bool,
}

/// Solve `(A + damping·I) x = b` for symmetric positive-definite `A`.
///
/// Standard (unpreconditioned) conjugate gradients, initialized at zero.
/// Panics if `b` is not the operator's dimension.
///
/// ```
/// use chef_linalg::{conjugate_gradient, CgConfig, Matrix};
///
/// let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
/// let out = conjugate_gradient(&a, &[1.0, 2.0], &CgConfig::default());
/// assert!(out.converged);
/// assert!((out.x[0] - 1.0 / 11.0).abs() < 1e-8);
/// ```
pub fn conjugate_gradient<Op: LinearOperator + ?Sized>(
    op: &Op,
    b: &[f64],
    cfg: &CgConfig,
) -> CgOutcome {
    let n = op.dim();
    assert_eq!(b.len(), n, "conjugate_gradient: rhs dimension mismatch");
    let x = vec![0.0; n];
    // r = b - A x = b at x = 0.
    let r = b.to_vec();
    cg_loop(op, b, x, r, cfg)
}

/// Solve `(A + damping·I) x = b` starting from the initial guess `x0`.
///
/// Warm-started conjugate gradients: identical arithmetic to
/// [`conjugate_gradient`] except the initial residual is
/// `r₀ = b − (A + damping·I) x₀` (one extra operator application). A
/// good `x0` — e.g. the previous round's iHVP solution, when `w` and the
/// validation gradient moved only slightly — reduces the *iteration
/// count*; the returned solution still satisfies the same
/// `‖b − A x‖ ≤ tol · max(‖b‖, 1)` stopping criterion, so downstream
/// consumers see a solution of the same quality, not a different answer
/// class. Passing `x0 = 0` reproduces the cold-start residual exactly
/// but pays the extra apply; use [`conjugate_gradient`] for that case.
///
/// Panics if `b` or `x0` is not the operator's dimension.
pub fn conjugate_gradient_from<Op: LinearOperator + ?Sized>(
    op: &Op,
    b: &[f64],
    x0: &[f64],
    cfg: &CgConfig,
) -> CgOutcome {
    let n = op.dim();
    assert_eq!(
        b.len(),
        n,
        "conjugate_gradient_from: rhs dimension mismatch"
    );
    assert_eq!(
        x0.len(),
        n,
        "conjugate_gradient_from: guess dimension mismatch"
    );
    let x = x0.to_vec();
    // r = b - (A + damping·I) x0.
    let mut r = vec![0.0; n];
    op.apply(x0, &mut r);
    if cfg.damping != 0.0 {
        vector::axpy(cfg.damping, x0, &mut r);
    }
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    cg_loop(op, b, x, r, cfg)
}

/// The shared CG iteration: standard unpreconditioned conjugate
/// gradients from an already-formed initial iterate/residual pair. Both
/// entry points funnel here so the cold-start path stays bit-identical
/// while the warm start only changes where the iteration begins.
fn cg_loop<Op: LinearOperator + ?Sized>(
    op: &Op,
    b: &[f64],
    mut x: Vec<f64>,
    mut r: Vec<f64>,
    cfg: &CgConfig,
) -> CgOutcome {
    let n = op.dim();
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let bnorm = vector::norm2(b).max(1.0);
    let mut rs_old = vector::norm2_sq(&r);
    let target = cfg.tol * bnorm;

    if rs_old.sqrt() <= target {
        return CgOutcome {
            x,
            iters: 0,
            residual_norm: rs_old.sqrt(),
            converged: true,
        };
    }

    let max_iters = cfg.max_iters.max(1);
    let mut iters = 0;
    for _ in 0..max_iters {
        op.apply(&p, &mut ap);
        if cfg.damping != 0.0 {
            vector::axpy(cfg.damping, &p, &mut ap);
        }
        let p_ap = vector::dot(&p, &ap);
        if p_ap <= 0.0 || !p_ap.is_finite() {
            // Negative curvature or numerical breakdown: stop with the
            // current iterate. With a damped SPD operator this is rare.
            break;
        }
        let alpha = rs_old / p_ap;
        vector::axpy(alpha, &p, &mut x);
        vector::axpy(-alpha, &ap, &mut r);
        iters += 1;
        let rs_new = vector::norm2_sq(&r);
        if rs_new.sqrt() <= target {
            rs_old = rs_new;
            break;
        }
        let beta = rs_new / rs_old;
        for (pi, ri) in p.iter_mut().zip(&r) {
            *pi = ri + beta * *pi;
        }
        rs_old = rs_new;
    }

    let residual_norm = rs_old.sqrt();
    CgOutcome {
        converged: residual_norm <= target,
        x,
        iters,
        residual_norm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn spd(n: usize, seed: u64) -> Matrix {
        // A = Mᵀ M + n·I is SPD for any M.
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = Matrix::from_vec(n, n, (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let mut a = m.transpose().matmul(&m);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn solves_identity() {
        let a = Matrix::identity(4);
        let b = [1.0, 2.0, 3.0, 4.0];
        let out = conjugate_gradient(&a, &b, &CgConfig::default());
        assert!(out.converged);
        for (xi, bi) in out.x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-8);
        }
    }

    #[test]
    fn solves_known_2x2() {
        // A = [[4,1],[1,3]], b = [1,2] → x = [1/11, 7/11].
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let out = conjugate_gradient(&a, &[1.0, 2.0], &CgConfig::default());
        assert!(out.converged);
        assert!((out.x[0] - 1.0 / 11.0).abs() < 1e-9);
        assert!((out.x[1] - 7.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn solves_random_spd() {
        for seed in 0..5 {
            let n = 20;
            let a = spd(n, seed);
            let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let mut b = vec![0.0; n];
            a.matvec(&xs, &mut b);
            let out = conjugate_gradient(&a, &b, &CgConfig::default());
            assert!(out.converged, "seed {seed} did not converge");
            for (got, want) in out.x.iter().zip(&xs) {
                assert!((got - want).abs() < 1e-6, "seed {seed}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn damping_solves_shifted_system() {
        let a = Matrix::identity(3);
        let cfg = CgConfig {
            damping: 1.0,
            ..CgConfig::default()
        };
        // Solves (I + I) x = b → x = b/2.
        let out = conjugate_gradient(&a, &[2.0, 4.0, 6.0], &cfg);
        assert!(out.converged);
        assert!((out.x[0] - 1.0).abs() < 1e-9);
        assert!((out.x[2] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rhs_is_immediate() {
        let a = spd(8, 3);
        let out = conjugate_gradient(&a, &[0.0; 8], &CgConfig::default());
        assert!(out.converged);
        assert_eq!(out.iters, 0);
        assert!(out.x.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn warm_start_from_zero_matches_cold_start_bitwise() {
        let a = spd(12, 9);
        let xs: Vec<f64> = (0..12).map(|i| (i as f64 * 0.61).cos()).collect();
        let mut b = vec![0.0; 12];
        a.matvec(&xs, &mut b);
        let cold = conjugate_gradient(&a, &b, &CgConfig::default());
        let warm = conjugate_gradient_from(&a, &b, &[0.0; 12], &CgConfig::default());
        assert_eq!(cold.iters, warm.iters);
        assert_eq!(cold.x, warm.x);
    }

    #[test]
    fn warm_start_at_solution_converges_immediately() {
        let a = spd(10, 4);
        let xs: Vec<f64> = (0..10).map(|i| (i as f64 * 0.53).sin()).collect();
        let mut b = vec![0.0; 10];
        a.matvec(&xs, &mut b);
        let cold = conjugate_gradient(&a, &b, &CgConfig::default());
        let warm = conjugate_gradient_from(&a, &b, &cold.x, &CgConfig::default());
        assert!(warm.converged);
        assert_eq!(warm.iters, 0);
        assert_eq!(warm.x, cold.x);
    }

    #[test]
    fn warm_start_near_solution_saves_iterations() {
        let a = spd(24, 11);
        let xs: Vec<f64> = (0..24).map(|i| (i as f64 * 0.29).sin()).collect();
        let mut b = vec![0.0; 24];
        a.matvec(&xs, &mut b);
        let cold = conjugate_gradient(&a, &b, &CgConfig::default());
        // Perturb the true solution slightly: a realistic "previous round".
        let near: Vec<f64> = cold.x.iter().map(|v| v + 1e-6).collect();
        let warm = conjugate_gradient_from(&a, &b, &near, &CgConfig::default());
        assert!(warm.converged);
        assert!(
            warm.iters < cold.iters,
            "warm {} vs cold {}",
            warm.iters,
            cold.iters
        );
        // Same fixed tolerance — the solution quality is unchanged.
        for (wv, cv) in warm.x.iter().zip(&cold.x) {
            assert!((wv - cv).abs() < 1e-6);
        }
    }

    #[test]
    fn warm_start_respects_damping() {
        let a = Matrix::identity(3);
        let cfg = CgConfig {
            damping: 1.0,
            ..CgConfig::default()
        };
        // (I + I) x = b → x = b/2; start from the exact solution.
        let out = conjugate_gradient_from(&a, &[2.0, 4.0, 6.0], &[1.0, 2.0, 3.0], &cfg);
        assert!(out.converged);
        assert_eq!(out.iters, 0);
    }

    #[test]
    fn respects_max_iters() {
        let a = spd(30, 7);
        let cfg = CgConfig {
            max_iters: 2,
            tol: 1e-14,
            damping: 0.0,
        };
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let mut b = vec![0.0; 30];
        a.matvec(&xs, &mut b);
        let out = conjugate_gradient(&a, &b, &cfg);
        assert_eq!(out.iters, 2);
    }
}
