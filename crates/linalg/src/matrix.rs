//! A minimal dense row-major matrix.
//!
//! CHEF only ever needs small dense matrices: the C×C softmax-Hessian core
//! `diag(p) − ppᵀ`, t-SNE affinity blocks, and feature views. The type is
//! a thin wrapper over a `Vec<f64>` with shape checking; all hot paths go
//! through slices so the compiler can keep everything in registers.

use crate::vector;

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Build from nested rows (convenient in tests).
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Matrix::from_rows: ragged input");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix-vector product `y = A x`.
    ///
    /// # Panics
    /// Panics in debug builds on shape mismatch.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols, "matvec: x length mismatch");
        debug_assert_eq!(y.len(), self.rows, "matvec: y length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = vector::dot(self.row(i), x);
        }
    }

    /// Transposed matrix-vector product `y = Aᵀ x`.
    pub fn matvec_t(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.rows, "matvec_t: x length mismatch");
        debug_assert_eq!(y.len(), self.cols, "matvec_t: y length mismatch");
        y.fill(0.0);
        for (i, xi) in x.iter().enumerate() {
            vector::axpy(*xi, self.row(i), y);
        }
    }

    /// Matrix product `A · B` into a fresh matrix.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                vector::axpy(a, brow, orow);
            }
        }
        out
    }

    /// Transpose into a fresh matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Rank-1 update `A += alpha · x yᵀ`.
    pub fn add_outer(&mut self, alpha: f64, x: &[f64], y: &[f64]) {
        debug_assert_eq!(x.len(), self.rows, "add_outer: x length mismatch");
        debug_assert_eq!(y.len(), self.cols, "add_outer: y length mismatch");
        for (i, xi) in x.iter().enumerate() {
            vector::axpy(alpha * xi, y, self.row_mut(i));
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        vector::norm2(&self.data)
    }

    /// Whether the matrix is symmetric to within `tol` (absolute).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "Matrix index out of range");
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "Matrix index out of range");
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_noop() {
        let a = Matrix::identity(3);
        let x = [1.0, -2.0, 3.0];
        let mut y = [0.0; 3];
        a.matvec(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn matvec_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let mut y = [0.0; 3];
        a.matvec(&[1.0, 1.0], &mut y);
        assert_eq!(y, [3.0, 7.0, 11.0]);
    }

    #[test]
    fn matvec_t_matches_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let x = [1.0, 0.5, -1.0];
        let mut y1 = [0.0; 2];
        a.matvec_t(&x, &mut y1);
        let at = a.transpose();
        let mut y2 = [0.0; 2];
        at.matvec(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![2.0, 1.0], vec![4.0, 3.0]]));
    }

    #[test]
    fn outer_product_update() {
        let mut a = Matrix::zeros(2, 2);
        a.add_outer(2.0, &[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(a, Matrix::from_rows(&[vec![6.0, 8.0], vec![12.0, 16.0]]));
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        assert!(s.is_symmetric(1e-12));
        let ns = Matrix::from_rows(&[vec![2.0, 1.0], vec![0.0, 3.0]]);
        assert!(!ns.is_symmetric(1e-12));
        let rect = Matrix::zeros(2, 3);
        assert!(!rect.is_symmetric(1e-12));
    }

    #[test]
    fn frobenius() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
