//! Cache-blocked batch kernels and a reusable allocation [`Workspace`].
//!
//! The Infl scoring path (chef-core) and the logistic-regression block
//! entry points (chef-model) bottom out here. Three design rules keep
//! the kernels both fast and reproducible:
//!
//! * **Whole-row dot products.** Every output element is one full
//!   [`vector::dot`] over the shared dimension `k`; blocking only
//!   reorders which *elements* are computed next, never how a single
//!   element's sum is associated. A blocked or parallel call is
//!   therefore bit-identical to the naive loop, which is what lets the
//!   selector's serial/parallel equivalence tests pin exact equality.
//! * **Row-major everything, `Bᵀ` implicit.** CHEF's GEMMs are all
//!   "samples × parameter-rows" products (`logits = X̃Wᵀ`, `U = X̃Vᵀ`),
//!   so the natural kernel is `C = A·Bᵀ` with both operands row-major —
//!   each output element is a contiguous-row dot, no transposition ever
//!   materialized.
//! * **No hidden allocation.** Kernels write into caller buffers;
//!   scratch comes from a [`Workspace`] that recycles `Vec`s across
//!   calls, so steady-state hot loops allocate nothing.
//!
//! With the `parallel` feature the dispatching entry points fan
//! row-blocks out over the thread pool (`rayon` shim: deterministic
//! chunking, chunk-ordered results); the `*_serial` twins are always
//! compiled and bit-identical.

use crate::vector;

/// Rows per cache block. 64 rows of a few-hundred-column operand keep
/// the streamed operand plus one output block comfortably inside L1/L2
/// while staying fine-grained enough to load-balance.
pub const ROW_BLOCK: usize = 64;

/// Minimum output rows before the dispatching kernels fan out over the
/// thread pool. Length-only, so the chosen code path is
/// machine-independent (same rule as chef-model's `PAR_GRAIN`).
#[cfg(feature = "parallel")]
const PAR_GRAIN_ROWS: usize = 256;

/// A pool of recycled `f64` buffers: `take` a buffer, use it, `put` it
/// back. After warm-up no call allocates — the pool grows each buffer
/// to the largest length ever requested and reuses the capacity.
///
/// Buffers returned by [`Workspace::take`] are zero-filled, so callers
/// can accumulate into them directly.
///
/// ```
/// use chef_linalg::Workspace;
///
/// let mut ws = Workspace::new();
/// let buf = ws.take(8);
/// assert_eq!(buf, vec![0.0; 8]);
/// ws.put(buf); // recycled: the next take(≤ capacity) won't allocate
/// let again = ws.take(4);
/// assert_eq!(again.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f64>>,
}

impl Workspace {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrow a zero-filled buffer of exactly `len` elements, reusing a
    /// pooled allocation when one is available.
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Borrow a buffer of exactly `len` elements whose contents are
    /// **unspecified** (recycled values from earlier uses). For hot
    /// paths that overwrite every element anyway — GEMM panels, gather
    /// targets — this skips [`Workspace::take`]'s O(len) zero-fill,
    /// which otherwise rivals the arithmetic it feeds on small blocks.
    pub fn take_uninit(&mut self, len: usize) -> Vec<f64> {
        let mut buf = self.pool.pop().unwrap_or_default();
        if buf.len() < len {
            buf.resize(len, 0.0);
        } else {
            buf.truncate(len);
        }
        buf
    }

    /// Return a buffer to the pool for reuse.
    pub fn put(&mut self, buf: Vec<f64>) {
        self.pool.push(buf);
    }
}

/// Split `0..len` into consecutive blocks of at most `block` elements.
#[inline]
fn blocks(len: usize, block: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..len.div_ceil(block.max(1))).map(move |b| (b * block, ((b + 1) * block).min(len)))
}

/// `C = A·Bᵀ` for row-major `A` (`m×k`) and `B` (`n×k`) into row-major
/// `out` (`m×n`): `out[i][j] = dot(a_i, b_j)`.
///
/// Dispatches to a thread-pool fan-out over row blocks of `A` when the
/// `parallel` feature is on and `m ≥ 256`; bit-identical to
/// [`matmul_nt_serial`] either way (see the module docs).
///
/// # Panics
/// Panics if the slice lengths are not multiples of `k` or `out` has
/// the wrong length (`k = 0` is rejected).
pub fn matmul_nt(a: &[f64], b: &[f64], k: usize, out: &mut [f64]) {
    #[cfg(feature = "parallel")]
    {
        let (m, n) = check_nt_shapes(a, b, k, out);
        if m >= PAR_GRAIN_ROWS {
            use rayon::prelude::*;
            let nblocks = m.div_ceil(ROW_BLOCK);
            let parts: Vec<Vec<f64>> = (0..nblocks)
                .into_par_iter()
                .map(|bi| {
                    let lo = bi * ROW_BLOCK;
                    let hi = (lo + ROW_BLOCK).min(m);
                    let mut part = vec![0.0; (hi - lo) * n];
                    for i in lo..hi {
                        let arow = &a[i * k..(i + 1) * k];
                        let orow = &mut part[(i - lo) * n..(i - lo + 1) * n];
                        for (j, o) in orow.iter_mut().enumerate() {
                            *o = vector::dot(arow, &b[j * k..(j + 1) * k]);
                        }
                    }
                    part
                })
                .collect();
            for (bi, part) in parts.into_iter().enumerate() {
                let lo = bi * ROW_BLOCK * n;
                out[lo..lo + part.len()].copy_from_slice(&part);
            }
            return;
        }
    }
    matmul_nt_serial(a, b, k, out);
}

/// Single-threaded [`matmul_nt`]. Always compiled; the dispatching
/// entry point falls back to it below the parallel grain size.
pub fn matmul_nt_serial(a: &[f64], b: &[f64], k: usize, out: &mut [f64]) {
    let (m, n) = check_nt_shapes(a, b, k, out);
    // Block both row sets so the `B` rows a block touches stay cached
    // while the `A` block streams past them.
    for (ilo, ihi) in blocks(m, ROW_BLOCK) {
        for (jlo, jhi) in blocks(n, ROW_BLOCK) {
            for i in ilo..ihi {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut out[i * n..(i + 1) * n];
                for j in jlo..jhi {
                    orow[j] = vector::dot(arow, &b[j * k..(j + 1) * k]);
                }
            }
        }
    }
}

fn check_nt_shapes(a: &[f64], b: &[f64], k: usize, out: &[f64]) -> (usize, usize) {
    assert!(k > 0, "matmul_nt: k must be positive");
    assert_eq!(a.len() % k, 0, "matmul_nt: a length not a multiple of k");
    assert_eq!(b.len() % k, 0, "matmul_nt: b length not a multiple of k");
    let m = a.len() / k;
    let n = b.len() / k;
    assert_eq!(out.len(), m * n, "matmul_nt: out shape mismatch");
    (m, n)
}

/// Affine block product `out[i][c] = dot(x_i, wb_c[..d]) + wb_c[d]` for
/// row-major `x` (`rows×d`) against bias-folded parameter rows `wb`
/// (`c_rows×(d+1)`) — one call computes a whole block's logits `X̃Wᵀ`
/// (or `U = X̃Vᵀ`) without materializing the bias column of `X̃`.
///
/// Serial by construction: callers block and parallelize over sample
/// blocks one level up, so this primitive stays allocation-free and
/// deterministic.
///
/// # Panics
/// Panics on shape mismatches (`d = 0` is rejected).
pub fn affine_nt(x: &[f64], wb: &[f64], d: usize, out: &mut [f64]) {
    assert!(d > 0, "affine_nt: d must be positive");
    assert_eq!(x.len() % d, 0, "affine_nt: x length not a multiple of d");
    let cols = d + 1;
    assert_eq!(
        wb.len() % cols,
        0,
        "affine_nt: wb length not a multiple of d+1"
    );
    let rows = x.len() / d;
    let c_rows = wb.len() / cols;
    assert_eq!(out.len(), rows * c_rows, "affine_nt: out shape mismatch");
    for i in 0..rows {
        let xrow = &x[i * d..(i + 1) * d];
        let orow = &mut out[i * c_rows..(i + 1) * c_rows];
        for (c, o) in orow.iter_mut().enumerate() {
            let wrow = &wb[c * cols..(c + 1) * cols];
            *o = vector::dot(xrow, &wrow[..d]) + wrow[d];
        }
    }
}

/// Dot product with four independent accumulators.
///
/// [`vector::dot`] is a single sequential floating-point reduction, so
/// the CPU cannot overlap its multiply-adds — each one waits on the
/// previous sum. Splitting the reduction into four independent partial
/// sums (combined as `(s0 + s1) + (s2 + s3)` at the end) breaks that
/// dependency chain and lets the FMA pipeline fill.
///
/// The summation *association* is fixed by the code (lane `i % 4`,
/// remainder appended to `s0`'s tree), so results are deterministic and
/// machine-independent — but they are **not** bit-identical to
/// [`vector::dot`]. Use it only inside kernels whose contract is
/// "agrees to ≤1e-10 with the per-sample path", never where two code
/// paths must pin exact equality against `vector::dot`-built results.
#[inline]
pub fn dot_unrolled(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "dot_unrolled: length mismatch");
    let mut s0 = 0.0;
    let mut s1 = 0.0;
    let mut s2 = 0.0;
    let mut s3 = 0.0;
    let xc = x.chunks_exact(4);
    let yc = y.chunks_exact(4);
    let (xr, yr) = (xc.remainder(), yc.remainder());
    for (xs, ys) in xc.zip(yc) {
        s0 += xs[0] * ys[0];
        s1 += xs[1] * ys[1];
        s2 += xs[2] * ys[2];
        s3 += xs[3] * ys[3];
    }
    for (a, b) in xr.iter().zip(yr) {
        s0 += a * b;
    }
    (s0 + s1) + (s2 + s3)
}

/// [`affine_nt`] with the inner dot replaced by [`dot_unrolled`]: same
/// shapes, same blocking (none — callers block one level up), different
/// (but fixed, deterministic) summation association. This is the
/// forward-panel kernel for throughput-critical batched paths such as
/// the logistic-regression `grad_block`, where the logits panel is the
/// dominant cost and the ≤1e-10 agreement contract applies.
///
/// # Panics
/// Panics on shape mismatches (`d = 0` is rejected).
pub fn affine_nt_unrolled(x: &[f64], wb: &[f64], d: usize, out: &mut [f64]) {
    assert!(d > 0, "affine_nt_unrolled: d must be positive");
    assert_eq!(
        x.len() % d,
        0,
        "affine_nt_unrolled: x length not a multiple of d"
    );
    let cols = d + 1;
    assert_eq!(
        wb.len() % cols,
        0,
        "affine_nt_unrolled: wb length not a multiple of d+1"
    );
    let rows = x.len() / d;
    let c_rows = wb.len() / cols;
    assert_eq!(
        out.len(),
        rows * c_rows,
        "affine_nt_unrolled: out shape mismatch"
    );
    for i in 0..rows {
        let xrow = &x[i * d..(i + 1) * d];
        let orow = &mut out[i * c_rows..(i + 1) * c_rows];
        for (c, o) in orow.iter_mut().enumerate() {
            let wrow = &wb[c * cols..(c + 1) * cols];
            *o = dot_unrolled(xrow, &wrow[..d]) + wrow[d];
        }
    }
}

/// Gathered block matvec: `out[r] = dot(a[rows[r]*k ..][..k], x)` — one
/// dot product per *selected* row of the row-major matrix `a`, without
/// copying the gathered rows. This is the Increm-Infl bound pass's
/// kernel: the provenance gradients live in one contiguous matrix and
/// each round dots the surviving pool's rows against the influence
/// vector.
///
/// Dispatches to a thread-pool fan-out over row blocks when the
/// `parallel` feature is on and `rows.len() ≥ 256`; each output element
/// is a full-row dot, so the result is bit-identical to
/// [`gather_matvec_serial`].
///
/// # Panics
/// Panics on shape mismatches or an out-of-range row index (`k = 0` is
/// rejected).
pub fn gather_matvec(a: &[f64], k: usize, rows: &[usize], x: &[f64], out: &mut [f64]) {
    #[cfg(feature = "parallel")]
    if rows.len() >= PAR_GRAIN_ROWS {
        use rayon::prelude::*;
        check_gather_shapes(a, k, rows, x, out);
        let nblocks = rows.len().div_ceil(ROW_BLOCK);
        let parts: Vec<Vec<f64>> = (0..nblocks)
            .into_par_iter()
            .map(|bi| {
                let lo = bi * ROW_BLOCK;
                let hi = (lo + ROW_BLOCK).min(rows.len());
                rows[lo..hi]
                    .iter()
                    .map(|&r| vector::dot(&a[r * k..(r + 1) * k], x))
                    .collect()
            })
            .collect();
        let mut at = 0;
        for part in parts {
            out[at..at + part.len()].copy_from_slice(&part);
            at += part.len();
        }
        return;
    }
    gather_matvec_serial(a, k, rows, x, out);
}

/// Single-threaded [`gather_matvec`]. Always compiled; the dispatching
/// entry point falls back to it below the parallel grain size.
pub fn gather_matvec_serial(a: &[f64], k: usize, rows: &[usize], x: &[f64], out: &mut [f64]) {
    check_gather_shapes(a, k, rows, x, out);
    for (o, &r) in out.iter_mut().zip(rows) {
        *o = vector::dot(&a[r * k..(r + 1) * k], x);
    }
}

fn check_gather_shapes(a: &[f64], k: usize, rows: &[usize], x: &[f64], out: &[f64]) {
    assert!(k > 0, "gather_matvec: k must be positive");
    assert_eq!(
        a.len() % k,
        0,
        "gather_matvec: a length not a multiple of k"
    );
    assert_eq!(x.len(), k, "gather_matvec: x length mismatch");
    assert_eq!(out.len(), rows.len(), "gather_matvec: out length mismatch");
    let n = a.len() / k;
    for &r in rows {
        assert!(r < n, "gather_matvec: row {r} out of {n}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn rand_vec(n: usize, rng: &mut SmallRng) -> Vec<f64> {
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    /// Naive reference through the existing `Matrix` type: `A·Bᵀ`.
    fn naive_nt(a: &[f64], b: &[f64], k: usize) -> Vec<f64> {
        let m = a.len() / k;
        let n = b.len() / k;
        let am = Matrix::from_vec(m, k, a.to_vec());
        let bm = Matrix::from_vec(n, k, b.to_vec());
        am.matmul(&bm.transpose()).as_slice().to_vec()
    }

    #[test]
    fn workspace_recycles_and_zeroes() {
        let mut ws = Workspace::new();
        let mut buf = ws.take(5);
        buf.iter_mut().for_each(|v| *v = 7.0);
        let cap = buf.capacity();
        ws.put(buf);
        let again = ws.take(3);
        assert_eq!(again, vec![0.0; 3]);
        assert!(again.capacity() >= cap.min(3));
    }

    #[test]
    fn workspace_take_uninit_has_right_length_without_zeroing() {
        let mut ws = Workspace::new();
        let mut buf = ws.take(4);
        buf.iter_mut().for_each(|v| *v = 9.0);
        ws.put(buf);
        // Shrinking reuse keeps recycled contents (that's the point).
        let b = ws.take_uninit(2);
        assert_eq!(b.len(), 2);
        assert_eq!(b, vec![9.0, 9.0]);
        ws.put(b);
        // Growth extends with zeros beyond the recycled prefix.
        let b = ws.take_uninit(6);
        assert_eq!(b.len(), 6);
        assert_eq!(&b[2..], &[0.0; 4]);
    }

    #[test]
    fn matmul_nt_known_values() {
        // A = [[1,2],[3,4],[5,6]], B = [[1,0],[0,1],[1,1]] → A·Bᵀ.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let mut out = vec![0.0; 9];
        matmul_nt(&a, &b, 2, &mut out);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 3.0, 4.0, 7.0, 5.0, 6.0, 11.0]);
    }

    #[test]
    fn blocked_matches_naive_across_block_boundaries() {
        let mut rng = SmallRng::seed_from_u64(1);
        // Shapes straddling ROW_BLOCK and the parallel grain.
        for (m, n, k) in [(1, 1, 3), (63, 65, 7), (64, 64, 1), (300, 5, 17)] {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(n * k, &mut rng);
            let mut out = vec![0.0; m * n];
            matmul_nt(&a, &b, k, &mut out);
            let mut serial = vec![0.0; m * n];
            matmul_nt_serial(&a, &b, k, &mut serial);
            let naive = naive_nt(&a, &b, k);
            assert_eq!(out, serial, "dispatching vs serial ({m}x{n}x{k})");
            for (x, y) in out.iter().zip(&naive) {
                assert!((x - y).abs() < 1e-12, "{m}x{n}x{k}: {x} vs {y}");
            }
        }
    }

    proptest! {
        /// Property: the blocked kernel agrees with the naive `Matrix`
        /// product for arbitrary shapes and contents.
        #[test]
        fn prop_blocked_matmul_matches_naive(
            m in 1usize..40,
            n in 1usize..40,
            k in 1usize..12,
            seed in 0u64..1000,
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(n * k, &mut rng);
            let mut out = vec![0.0; m * n];
            matmul_nt(&a, &b, k, &mut out);
            let naive = naive_nt(&a, &b, k);
            for (x, y) in out.iter().zip(&naive) {
                prop_assert!((x - y).abs() < 1e-12, "{} vs {}", x, y);
            }
        }
    }

    #[test]
    fn affine_matches_explicit_bias_column() {
        let mut rng = SmallRng::seed_from_u64(2);
        let (rows, c, d) = (70, 3, 5);
        let x = rand_vec(rows * d, &mut rng);
        let wb = rand_vec(c * (d + 1), &mut rng);
        let mut out = vec![0.0; rows * c];
        affine_nt(&x, &wb, d, &mut out);
        // Reference: append the all-ones column and run the plain kernel.
        let mut xt = Vec::with_capacity(rows * (d + 1));
        for r in 0..rows {
            xt.extend_from_slice(&x[r * d..(r + 1) * d]);
            xt.push(1.0);
        }
        let mut reference = vec![0.0; rows * c];
        matmul_nt_serial(&xt, &wb, d + 1, &mut reference);
        for (a, b) in out.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn dot_unrolled_matches_dot_to_fp_tolerance() {
        let mut rng = SmallRng::seed_from_u64(8);
        for len in [0, 1, 3, 4, 5, 8, 17, 64, 257] {
            let x = rand_vec(len, &mut rng);
            let y = rand_vec(len, &mut rng);
            let plain = crate::vector::dot(&x, &y);
            let fast = dot_unrolled(&x, &y);
            assert!(
                (plain - fast).abs() <= 1e-12 * plain.abs().max(1.0),
                "len {len}: {plain} vs {fast}"
            );
        }
    }

    #[test]
    fn dot_unrolled_is_deterministic() {
        let mut rng = SmallRng::seed_from_u64(9);
        let x = rand_vec(103, &mut rng);
        let y = rand_vec(103, &mut rng);
        assert_eq!(
            dot_unrolled(&x, &y).to_bits(),
            dot_unrolled(&x, &y).to_bits()
        );
    }

    #[test]
    fn affine_unrolled_matches_affine_to_fp_tolerance() {
        let mut rng = SmallRng::seed_from_u64(10);
        for (rows, c, d) in [(1, 2, 1), (33, 3, 5), (70, 4, 32), (9, 2, 65)] {
            let x = rand_vec(rows * d, &mut rng);
            let wb = rand_vec(c * (d + 1), &mut rng);
            let mut plain = vec![0.0; rows * c];
            let mut fast = vec![0.0; rows * c];
            affine_nt(&x, &wb, d, &mut plain);
            affine_nt_unrolled(&x, &wb, d, &mut fast);
            for (a, b) in plain.iter().zip(&fast) {
                assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn gather_matvec_matches_per_row_dots() {
        let mut rng = SmallRng::seed_from_u64(3);
        let (n, k) = (400, 9);
        let a = rand_vec(n * k, &mut rng);
        let x = rand_vec(k, &mut rng);
        // A scattered, repeated row selection longer than the grain.
        let rows: Vec<usize> = (0..300).map(|i| (i * 7 + 3) % n).collect();
        let mut out = vec![0.0; rows.len()];
        gather_matvec(&a, k, &rows, &x, &mut out);
        let mut serial = vec![0.0; rows.len()];
        gather_matvec_serial(&a, k, &rows, &x, &mut serial);
        assert_eq!(out, serial, "dispatching vs serial must be bit-identical");
        for (o, &r) in out.iter().zip(&rows) {
            let expect = crate::vector::dot(&a[r * k..(r + 1) * k], &x);
            assert_eq!(*o, expect, "row {r}");
        }
    }

    #[test]
    #[should_panic(expected = "out shape mismatch")]
    fn matmul_nt_rejects_bad_out() {
        let mut out = vec![0.0; 3];
        matmul_nt(&[1.0, 2.0], &[3.0, 4.0], 2, &mut out);
    }

    #[test]
    #[should_panic(expected = "row 4 out of 4")]
    fn gather_rejects_out_of_range_row() {
        let mut out = vec![0.0; 1];
        gather_matvec(&[0.0; 8], 2, &[4], &[1.0, 1.0], &mut out);
    }
}
