//! Cache-blocked batch kernels and a reusable allocation [`Workspace`].
//!
//! The Infl scoring path (chef-core) and the logistic-regression block
//! entry points (chef-model) bottom out here. Three design rules keep
//! the kernels both fast and reproducible:
//!
//! * **Whole-row dot products.** Every output element is one full
//!   [`vector::dot`] over the shared dimension `k`; blocking only
//!   reorders which *elements* are computed next, never how a single
//!   element's sum is associated. A blocked or parallel call is
//!   therefore bit-identical to the naive loop, which is what lets the
//!   selector's serial/parallel equivalence tests pin exact equality.
//! * **Row-major everything, `Bᵀ` implicit.** CHEF's GEMMs are all
//!   "samples × parameter-rows" products (`logits = X̃Wᵀ`, `U = X̃Vᵀ`),
//!   so the natural kernel is `C = A·Bᵀ` with both operands row-major —
//!   each output element is a contiguous-row dot, no transposition ever
//!   materialized.
//! * **No hidden allocation.** Kernels write into caller buffers;
//!   scratch comes from a [`Workspace`] that recycles `Vec`s across
//!   calls, so steady-state hot loops allocate nothing.
//!
//! With the `parallel` feature the dispatching entry points fan
//! row-blocks out over the thread pool (`rayon` shim: deterministic
//! chunking, chunk-ordered results); the `*_serial` twins are always
//! compiled and bit-identical.

use crate::vector;

/// Rows per cache block. 64 rows of a few-hundred-column operand keep
/// the streamed operand plus one output block comfortably inside L1/L2
/// while staying fine-grained enough to load-balance.
pub const ROW_BLOCK: usize = 64;

/// Minimum output rows before the dispatching kernels fan out over the
/// thread pool. Length-only, so the chosen code path is
/// machine-independent (same rule as chef-model's `PAR_GRAIN`).
#[cfg(feature = "parallel")]
const PAR_GRAIN_ROWS: usize = 256;

/// Precision/ILP backend for the blocked panel kernels.
///
/// Every batched model entry point (`score_block`/`grad_block`/
/// `hvp_block` in chef-model) bottoms out in an affine panel product;
/// this enum selects which microkernel computes it. The numerics
/// contract per backend (DESIGN.md §14):
///
/// * [`KernelBackend::Reference`] — today's scalar-f64 kernels,
///   **bit-identical** to the pre-backend code paths (score/HVP panels
///   through [`affine_nt`], the gradient forward panel through
///   [`affine_nt_unrolled`], exactly as before).
/// * [`KernelBackend::UnrolledF64`] — every panel through the 4-lane
///   ILP [`affine_nt_unrolled`]. Deterministic and machine-independent,
///   agrees with `Reference` to ≤1e-10 relative (bit-identical on the
///   gradient panel, where `Reference` already runs unrolled).
/// * [`KernelBackend::MixedF32`] — operands demoted to f32 panels, dot
///   products accumulated in f32 within [`F32_SEGMENT`]-element
///   segments and in f64 across segment boundaries
///   ([`affine_nt_mixed_f32`]). Deterministic, agrees with `Reference`
///   to ≤1e-4 relative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelBackend {
    /// Scalar-f64 reference kernels (bit-identical to the pre-backend
    /// code paths; the only backend the committed goldens pin).
    #[default]
    Reference,
    /// Explicitly ILP-unrolled f64 microkernel on every panel.
    UnrolledF64,
    /// f32 panels with f64 accumulation at segment boundaries.
    MixedF32,
}

impl KernelBackend {
    /// Stable lowercase name used in telemetry documents.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Reference => "reference",
            KernelBackend::UnrolledF64 => "unrolled_f64",
            KernelBackend::MixedF32 => "mixed_f32",
        }
    }

    /// Every backend, for equivalence tests and bench sweeps.
    pub const ALL: [KernelBackend; 3] = [
        KernelBackend::Reference,
        KernelBackend::UnrolledF64,
        KernelBackend::MixedF32,
    ];
}

/// Most buffers the pool retains (per element type). Hot loops hold at
/// most a handful of panels at once, so anything past this is churn —
/// overflow evicts the smallest-capacity entry rather than growing
/// without bound.
const MAX_POOLED: usize = 16;

/// Pick the pooled buffer whose capacity fits `len` best: the smallest
/// capacity ≥ `len`, else the largest available (it is the cheapest to
/// grow). An empty pool hands back a fresh `Vec`.
fn best_fit<T>(pool: &mut Vec<Vec<T>>, len: usize) -> Vec<T> {
    if pool.is_empty() {
        return Vec::new();
    }
    let mut best: Option<usize> = None;
    let mut largest = 0;
    for i in 0..pool.len() {
        let cap = pool[i].capacity();
        if cap >= len && best.is_none_or(|j| cap < pool[j].capacity()) {
            best = Some(i);
        }
        if cap > pool[largest].capacity() {
            largest = i;
        }
    }
    pool.swap_remove(best.unwrap_or(largest))
}

/// Return `buf` to `pool`, evicting the smallest-capacity entry when the
/// pool is full (keep the larger of the two — large panels are the
/// expensive allocations the pool exists to retain).
fn put_back<T>(pool: &mut Vec<Vec<T>>, buf: Vec<T>) {
    if pool.len() < MAX_POOLED {
        pool.push(buf);
        return;
    }
    let mut min = 0;
    for i in 1..pool.len() {
        if pool[i].capacity() < pool[min].capacity() {
            min = i;
        }
    }
    if pool[min].capacity() < buf.capacity() {
        pool[min] = buf;
    }
}

/// A pool of recycled buffers: `take` a buffer, use it, `put` it back.
/// After warm-up no call allocates: `take` picks the **best-fit**
/// pooled buffer (smallest capacity that already holds `len`), so a
/// small request cannot steal the one large-capacity buffer and force
/// the next GEMM panel to reallocate. The pool keeps at most
/// `MAX_POOLED` (16) buffers, evicting the smallest on overflow.
///
/// Buffers returned by [`Workspace::take`] are zero-filled, so callers
/// can accumulate into them directly. A separate f32 pool
/// ([`Workspace::take_f32_from`]) backs the mixed-precision backend's
/// demoted panels.
///
/// ```
/// use chef_linalg::Workspace;
///
/// let mut ws = Workspace::new();
/// let buf = ws.take(8);
/// assert_eq!(buf, vec![0.0; 8]);
/// ws.put(buf); // recycled: the next take(≤ capacity) won't allocate
/// let again = ws.take(4);
/// assert_eq!(again.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f64>>,
    pool_f32: Vec<Vec<f32>>,
}

impl Workspace {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrow a zero-filled buffer of exactly `len` elements, reusing
    /// the best-fitting pooled allocation when one is available.
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        let mut buf = best_fit(&mut self.pool, len);
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Borrow a buffer of exactly `len` elements whose contents are
    /// **unspecified** (recycled values from earlier uses). For hot
    /// paths that overwrite every element anyway — GEMM panels, gather
    /// targets — this skips [`Workspace::take`]'s O(len) zero-fill,
    /// which otherwise rivals the arithmetic it feeds on small blocks.
    pub fn take_uninit(&mut self, len: usize) -> Vec<f64> {
        let mut buf = best_fit(&mut self.pool, len);
        if buf.len() < len {
            buf.resize(len, 0.0);
        } else {
            buf.truncate(len);
        }
        buf
    }

    /// Return a buffer to the pool for reuse.
    pub fn put(&mut self, buf: Vec<f64>) {
        put_back(&mut self.pool, buf);
    }

    /// Borrow an f32 buffer holding `src` demoted element-wise — the
    /// operand conversion of the [`KernelBackend::MixedF32`] panels,
    /// allocation-free after warm-up like the f64 pool.
    pub fn take_f32_from(&mut self, src: &[f64]) -> Vec<f32> {
        let mut buf = best_fit(&mut self.pool_f32, src.len());
        buf.clear();
        buf.extend(src.iter().map(|&v| v as f32));
        buf
    }

    /// Return an f32 buffer to the pool for reuse.
    pub fn put_f32(&mut self, buf: Vec<f32>) {
        put_back(&mut self.pool_f32, buf);
    }
}

/// Split `0..len` into consecutive blocks of at most `block` elements.
#[inline]
fn blocks(len: usize, block: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..len.div_ceil(block.max(1))).map(move |b| (b * block, ((b + 1) * block).min(len)))
}

/// `C = A·Bᵀ` for row-major `A` (`m×k`) and `B` (`n×k`) into row-major
/// `out` (`m×n`): `out[i][j] = dot(a_i, b_j)`.
///
/// Dispatches to a thread-pool fan-out over row blocks of `A` when the
/// `parallel` feature is on, `m ≥ 256`, **and** the pool has more than
/// one worker — on a single-worker pool the fan-out's per-block
/// allocations and final copies are pure overhead, so it falls through
/// to the serial path (same gate as chef-model's `batch_grad` and
/// chef-core's bound pass). Bit-identical to [`matmul_nt_serial`]
/// either way (see the module docs).
///
/// # Panics
/// Panics if the slice lengths are not multiples of `k` or `out` has
/// the wrong length (`k = 0` is rejected).
pub fn matmul_nt(a: &[f64], b: &[f64], k: usize, out: &mut [f64]) {
    #[cfg(feature = "parallel")]
    {
        let (m, n) = check_nt_shapes(a, b, k, out);
        if m >= PAR_GRAIN_ROWS && rayon::current_num_threads() > 1 {
            use rayon::prelude::*;
            let nblocks = m.div_ceil(ROW_BLOCK);
            let parts: Vec<Vec<f64>> = (0..nblocks)
                .into_par_iter()
                .map(|bi| {
                    let lo = bi * ROW_BLOCK;
                    let hi = (lo + ROW_BLOCK).min(m);
                    let mut part = vec![0.0; (hi - lo) * n];
                    for i in lo..hi {
                        let arow = &a[i * k..(i + 1) * k];
                        let orow = &mut part[(i - lo) * n..(i - lo + 1) * n];
                        for (j, o) in orow.iter_mut().enumerate() {
                            *o = vector::dot(arow, &b[j * k..(j + 1) * k]);
                        }
                    }
                    part
                })
                .collect();
            for (bi, part) in parts.into_iter().enumerate() {
                let lo = bi * ROW_BLOCK * n;
                out[lo..lo + part.len()].copy_from_slice(&part);
            }
            return;
        }
    }
    matmul_nt_serial(a, b, k, out);
}

/// Single-threaded [`matmul_nt`]. Always compiled; the dispatching
/// entry point falls back to it below the parallel grain size.
pub fn matmul_nt_serial(a: &[f64], b: &[f64], k: usize, out: &mut [f64]) {
    let (m, n) = check_nt_shapes(a, b, k, out);
    // Block both row sets so the `B` rows a block touches stay cached
    // while the `A` block streams past them.
    for (ilo, ihi) in blocks(m, ROW_BLOCK) {
        for (jlo, jhi) in blocks(n, ROW_BLOCK) {
            for i in ilo..ihi {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut out[i * n..(i + 1) * n];
                for j in jlo..jhi {
                    orow[j] = vector::dot(arow, &b[j * k..(j + 1) * k]);
                }
            }
        }
    }
}

fn check_nt_shapes(a: &[f64], b: &[f64], k: usize, out: &[f64]) -> (usize, usize) {
    assert!(k > 0, "matmul_nt: k must be positive");
    assert_eq!(a.len() % k, 0, "matmul_nt: a length not a multiple of k");
    assert_eq!(b.len() % k, 0, "matmul_nt: b length not a multiple of k");
    let m = a.len() / k;
    let n = b.len() / k;
    assert_eq!(out.len(), m * n, "matmul_nt: out shape mismatch");
    (m, n)
}

/// Affine block product `out[i][c] = dot(x_i, wb_c[..d]) + wb_c[d]` for
/// row-major `x` (`rows×d`) against bias-folded parameter rows `wb`
/// (`c_rows×(d+1)`) — one call computes a whole block's logits `X̃Wᵀ`
/// (or `U = X̃Vᵀ`) without materializing the bias column of `X̃`.
///
/// Serial by construction: callers block and parallelize over sample
/// blocks one level up, so this primitive stays allocation-free and
/// deterministic.
///
/// # Panics
/// Panics on shape mismatches (`d = 0` is rejected).
pub fn affine_nt(x: &[f64], wb: &[f64], d: usize, out: &mut [f64]) {
    assert!(d > 0, "affine_nt: d must be positive");
    assert_eq!(x.len() % d, 0, "affine_nt: x length not a multiple of d");
    let cols = d + 1;
    assert_eq!(
        wb.len() % cols,
        0,
        "affine_nt: wb length not a multiple of d+1"
    );
    let rows = x.len() / d;
    let c_rows = wb.len() / cols;
    assert_eq!(out.len(), rows * c_rows, "affine_nt: out shape mismatch");
    for i in 0..rows {
        let xrow = &x[i * d..(i + 1) * d];
        let orow = &mut out[i * c_rows..(i + 1) * c_rows];
        for (c, o) in orow.iter_mut().enumerate() {
            let wrow = &wb[c * cols..(c + 1) * cols];
            *o = vector::dot(xrow, &wrow[..d]) + wrow[d];
        }
    }
}

/// Dot product with four independent accumulators.
///
/// [`vector::dot`] is a single sequential floating-point reduction, so
/// the CPU cannot overlap its multiply-adds — each one waits on the
/// previous sum. Splitting the reduction into four independent partial
/// sums (combined as `(s0 + s1) + (s2 + s3)` at the end) breaks that
/// dependency chain and lets the FMA pipeline fill.
///
/// The summation *association* is fixed by the code (lane `i % 4`,
/// remainder appended to `s0`'s tree), so results are deterministic and
/// machine-independent — but they are **not** bit-identical to
/// [`vector::dot`]. Use it only inside kernels whose contract is
/// "agrees to ≤1e-10 with the per-sample path", never where two code
/// paths must pin exact equality against `vector::dot`-built results.
#[inline]
pub fn dot_unrolled(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "dot_unrolled: length mismatch");
    let mut s0 = 0.0;
    let mut s1 = 0.0;
    let mut s2 = 0.0;
    let mut s3 = 0.0;
    let xc = x.chunks_exact(4);
    let yc = y.chunks_exact(4);
    let (xr, yr) = (xc.remainder(), yc.remainder());
    for (xs, ys) in xc.zip(yc) {
        s0 += xs[0] * ys[0];
        s1 += xs[1] * ys[1];
        s2 += xs[2] * ys[2];
        s3 += xs[3] * ys[3];
    }
    for (a, b) in xr.iter().zip(yr) {
        s0 += a * b;
    }
    (s0 + s1) + (s2 + s3)
}

/// [`affine_nt`] with the inner dot replaced by [`dot_unrolled`]: same
/// shapes, same blocking (none — callers block one level up), different
/// (but fixed, deterministic) summation association. This is the
/// forward-panel kernel for throughput-critical batched paths such as
/// the logistic-regression `grad_block`, where the logits panel is the
/// dominant cost and the ≤1e-10 agreement contract applies.
///
/// # Panics
/// Panics on shape mismatches (`d = 0` is rejected).
pub fn affine_nt_unrolled(x: &[f64], wb: &[f64], d: usize, out: &mut [f64]) {
    assert!(d > 0, "affine_nt_unrolled: d must be positive");
    assert_eq!(
        x.len() % d,
        0,
        "affine_nt_unrolled: x length not a multiple of d"
    );
    let cols = d + 1;
    assert_eq!(
        wb.len() % cols,
        0,
        "affine_nt_unrolled: wb length not a multiple of d+1"
    );
    let rows = x.len() / d;
    let c_rows = wb.len() / cols;
    assert_eq!(
        out.len(),
        rows * c_rows,
        "affine_nt_unrolled: out shape mismatch"
    );
    for i in 0..rows {
        let xrow = &x[i * d..(i + 1) * d];
        let orow = &mut out[i * c_rows..(i + 1) * c_rows];
        for (c, o) in orow.iter_mut().enumerate() {
            let wrow = &wb[c * cols..(c + 1) * cols];
            *o = dot_unrolled(xrow, &wrow[..d]) + wrow[d];
        }
    }
}

/// Elements accumulated in f32 before spilling the partial sum to f64
/// in [`dot_mixed_f32`]. 64 f32 multiply-adds keep the relative
/// rounding error of a segment near 64·2⁻²⁴ ≈ 4e-6, well inside the
/// backend's documented ≤1e-4 contract, while keeping the f64 promotes
/// off the hot inner loop.
pub const F32_SEGMENT: usize = 64;

/// Dot product over demoted f32 operands with f64 segment accumulation:
/// within each [`F32_SEGMENT`]-element segment the products accumulate
/// in four independent f32 lanes (the [`dot_unrolled`] association),
/// and each segment's sum is promoted and added into an f64 total. The
/// association is fixed by the code, so results are deterministic and
/// machine-independent.
#[inline]
pub fn dot_mixed_f32(x: &[f32], y: &[f32]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "dot_mixed_f32: length mismatch");
    let mut total = 0.0f64;
    for (xs, ys) in x.chunks(F32_SEGMENT).zip(y.chunks(F32_SEGMENT)) {
        let mut s0 = 0.0f32;
        let mut s1 = 0.0f32;
        let mut s2 = 0.0f32;
        let mut s3 = 0.0f32;
        let xc = xs.chunks_exact(4);
        let yc = ys.chunks_exact(4);
        let (xr, yr) = (xc.remainder(), yc.remainder());
        for (xq, yq) in xc.zip(yc) {
            s0 += xq[0] * yq[0];
            s1 += xq[1] * yq[1];
            s2 += xq[2] * yq[2];
            s3 += xq[3] * yq[3];
        }
        for (a, b) in xr.iter().zip(yr) {
            s0 += a * b;
        }
        total += ((s0 + s1) + (s2 + s3)) as f64;
    }
    total
}

/// [`affine_nt`] over pre-demoted f32 operands with f64 segment
/// accumulation ([`dot_mixed_f32`]); the demoted bias is promoted back
/// and added in f64, and `out` stays f64. This is the panel kernel of
/// [`KernelBackend::MixedF32`]: callers demote `x`/`wb` once per block
/// via [`Workspace::take_f32_from`], halving the streamed panel bytes.
///
/// # Panics
/// Panics on shape mismatches (`d = 0` is rejected).
pub fn affine_nt_mixed_f32(x: &[f32], wb: &[f32], d: usize, out: &mut [f64]) {
    assert!(d > 0, "affine_nt_mixed_f32: d must be positive");
    assert_eq!(
        x.len() % d,
        0,
        "affine_nt_mixed_f32: x length not a multiple of d"
    );
    let cols = d + 1;
    assert_eq!(
        wb.len() % cols,
        0,
        "affine_nt_mixed_f32: wb length not a multiple of d+1"
    );
    let rows = x.len() / d;
    let c_rows = wb.len() / cols;
    assert_eq!(
        out.len(),
        rows * c_rows,
        "affine_nt_mixed_f32: out shape mismatch"
    );
    for i in 0..rows {
        let xrow = &x[i * d..(i + 1) * d];
        let orow = &mut out[i * c_rows..(i + 1) * c_rows];
        for (c, o) in orow.iter_mut().enumerate() {
            let wrow = &wb[c * cols..(c + 1) * cols];
            *o = dot_mixed_f32(xrow, &wrow[..d]) + wrow[d] as f64;
        }
    }
}

/// Gathered block matvec: `out[r] = dot(a[rows[r]*k ..][..k], x)` — one
/// dot product per *selected* row of the row-major matrix `a`, without
/// copying the gathered rows. This is the Increm-Infl bound pass's
/// kernel: the provenance gradients live in one contiguous matrix and
/// each round dots the surviving pool's rows against the influence
/// vector.
///
/// Dispatches to a thread-pool fan-out over row blocks when the
/// `parallel` feature is on, `rows.len() ≥ 256`, and the pool has more
/// than one worker (single-worker pools take the serial path — the
/// fan-out would only add per-block allocation overhead); each output
/// element is a full-row dot, so the result is bit-identical to
/// [`gather_matvec_serial`].
///
/// # Panics
/// Panics on shape mismatches or an out-of-range row index (`k = 0` is
/// rejected).
pub fn gather_matvec(a: &[f64], k: usize, rows: &[usize], x: &[f64], out: &mut [f64]) {
    #[cfg(feature = "parallel")]
    if rows.len() >= PAR_GRAIN_ROWS && rayon::current_num_threads() > 1 {
        use rayon::prelude::*;
        check_gather_shapes(a, k, rows, x, out);
        let nblocks = rows.len().div_ceil(ROW_BLOCK);
        let parts: Vec<Vec<f64>> = (0..nblocks)
            .into_par_iter()
            .map(|bi| {
                let lo = bi * ROW_BLOCK;
                let hi = (lo + ROW_BLOCK).min(rows.len());
                rows[lo..hi]
                    .iter()
                    .map(|&r| vector::dot(&a[r * k..(r + 1) * k], x))
                    .collect()
            })
            .collect();
        let mut at = 0;
        for part in parts {
            out[at..at + part.len()].copy_from_slice(&part);
            at += part.len();
        }
        return;
    }
    gather_matvec_serial(a, k, rows, x, out);
}

/// Single-threaded [`gather_matvec`]. Always compiled; the dispatching
/// entry point falls back to it below the parallel grain size.
pub fn gather_matvec_serial(a: &[f64], k: usize, rows: &[usize], x: &[f64], out: &mut [f64]) {
    check_gather_shapes(a, k, rows, x, out);
    for (o, &r) in out.iter_mut().zip(rows) {
        *o = vector::dot(&a[r * k..(r + 1) * k], x);
    }
}

fn check_gather_shapes(a: &[f64], k: usize, rows: &[usize], x: &[f64], out: &[f64]) {
    assert!(k > 0, "gather_matvec: k must be positive");
    assert_eq!(
        a.len() % k,
        0,
        "gather_matvec: a length not a multiple of k"
    );
    assert_eq!(x.len(), k, "gather_matvec: x length mismatch");
    assert_eq!(out.len(), rows.len(), "gather_matvec: out length mismatch");
    let n = a.len() / k;
    for &r in rows {
        assert!(r < n, "gather_matvec: row {r} out of {n}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn rand_vec(n: usize, rng: &mut SmallRng) -> Vec<f64> {
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    /// Naive reference through the existing `Matrix` type: `A·Bᵀ`.
    fn naive_nt(a: &[f64], b: &[f64], k: usize) -> Vec<f64> {
        let m = a.len() / k;
        let n = b.len() / k;
        let am = Matrix::from_vec(m, k, a.to_vec());
        let bm = Matrix::from_vec(n, k, b.to_vec());
        am.matmul(&bm.transpose()).as_slice().to_vec()
    }

    #[test]
    fn workspace_recycles_and_zeroes() {
        let mut ws = Workspace::new();
        let mut buf = ws.take(5);
        buf.iter_mut().for_each(|v| *v = 7.0);
        let cap = buf.capacity();
        ws.put(buf);
        let again = ws.take(3);
        assert_eq!(again, vec![0.0; 3]);
        assert!(again.capacity() >= cap.min(3));
    }

    #[test]
    fn workspace_take_uninit_has_right_length_without_zeroing() {
        let mut ws = Workspace::new();
        let mut buf = ws.take(4);
        buf.iter_mut().for_each(|v| *v = 9.0);
        ws.put(buf);
        // Shrinking reuse keeps recycled contents (that's the point).
        let b = ws.take_uninit(2);
        assert_eq!(b.len(), 2);
        assert_eq!(b, vec![9.0, 9.0]);
        ws.put(b);
        // Growth extends with zeros beyond the recycled prefix.
        let b = ws.take_uninit(6);
        assert_eq!(b.len(), 6);
        assert_eq!(&b[2..], &[0.0; 4]);
    }

    #[test]
    fn workspace_take_is_best_fit_not_pop() {
        // A small take must not steal the one large-capacity buffer.
        let mut ws = Workspace::new();
        let big = ws.take(1024);
        let big_cap = big.capacity();
        let small = ws.take(8);
        ws.put(small); // pool order: [small] …
        ws.put(big); // … then [small, big]: a naive pop would grab `big`.
        let again_small = ws.take(8);
        assert!(
            again_small.capacity() < big_cap,
            "take(8) stole the large buffer (cap {})",
            again_small.capacity()
        );
        let again_big = ws.take_uninit(1024);
        assert_eq!(again_big.capacity(), big_cap, "large buffer reallocated");
    }

    #[test]
    fn workspace_prefers_largest_when_nothing_fits() {
        let mut ws = Workspace::new();
        let a = ws.take(16);
        let b = ws.take(64);
        let b_cap = b.capacity();
        ws.put(a);
        ws.put(b);
        // Nothing holds 100 elements: grow the largest, not the smallest.
        let grown = ws.take(100);
        assert!(grown.capacity() >= b_cap);
        assert_eq!(ws.pool.len(), 1, "smaller buffer should still be pooled");
        assert!(ws.pool[0].capacity() < b_cap, "took the wrong buffer");
    }

    #[test]
    fn workspace_pool_growth_is_bounded() {
        let mut ws = Workspace::new();
        for len in 1..=(2 * MAX_POOLED) {
            ws.put(Vec::with_capacity(len));
        }
        assert_eq!(ws.pool.len(), MAX_POOLED);
        // Overflow keeps the largest capacities: the smallest retained
        // buffer must beat every evicted one.
        let min_cap = ws.pool.iter().map(Vec::capacity).min().unwrap();
        assert!(
            min_cap > MAX_POOLED,
            "evicted a large buffer (min {min_cap})"
        );
    }

    #[test]
    fn workspace_f32_pool_demotes_and_recycles() {
        let mut ws = Workspace::new();
        let buf = ws.take_f32_from(&[1.5, -2.25, 3.0]);
        assert_eq!(buf, vec![1.5f32, -2.25, 3.0]);
        let cap = buf.capacity();
        ws.put_f32(buf);
        let again = ws.take_f32_from(&[4.0, 5.0]);
        assert_eq!(again, vec![4.0f32, 5.0]);
        assert_eq!(again.capacity(), cap, "f32 buffer not recycled");
    }

    #[test]
    fn matmul_nt_known_values() {
        // A = [[1,2],[3,4],[5,6]], B = [[1,0],[0,1],[1,1]] → A·Bᵀ.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let mut out = vec![0.0; 9];
        matmul_nt(&a, &b, 2, &mut out);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 3.0, 4.0, 7.0, 5.0, 6.0, 11.0]);
    }

    #[test]
    fn blocked_matches_naive_across_block_boundaries() {
        let mut rng = SmallRng::seed_from_u64(1);
        // Shapes straddling ROW_BLOCK and the parallel grain.
        for (m, n, k) in [(1, 1, 3), (63, 65, 7), (64, 64, 1), (300, 5, 17)] {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(n * k, &mut rng);
            let mut out = vec![0.0; m * n];
            matmul_nt(&a, &b, k, &mut out);
            let mut serial = vec![0.0; m * n];
            matmul_nt_serial(&a, &b, k, &mut serial);
            let naive = naive_nt(&a, &b, k);
            assert_eq!(out, serial, "dispatching vs serial ({m}x{n}x{k})");
            for (x, y) in out.iter().zip(&naive) {
                assert!((x - y).abs() < 1e-12, "{m}x{n}x{k}: {x} vs {y}");
            }
        }
    }

    proptest! {
        /// Property: the blocked kernel agrees with the naive `Matrix`
        /// product for arbitrary shapes and contents.
        #[test]
        fn prop_blocked_matmul_matches_naive(
            m in 1usize..40,
            n in 1usize..40,
            k in 1usize..12,
            seed in 0u64..1000,
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(n * k, &mut rng);
            let mut out = vec![0.0; m * n];
            matmul_nt(&a, &b, k, &mut out);
            let naive = naive_nt(&a, &b, k);
            for (x, y) in out.iter().zip(&naive) {
                prop_assert!((x - y).abs() < 1e-12, "{} vs {}", x, y);
            }
        }
    }

    #[test]
    fn affine_matches_explicit_bias_column() {
        let mut rng = SmallRng::seed_from_u64(2);
        let (rows, c, d) = (70, 3, 5);
        let x = rand_vec(rows * d, &mut rng);
        let wb = rand_vec(c * (d + 1), &mut rng);
        let mut out = vec![0.0; rows * c];
        affine_nt(&x, &wb, d, &mut out);
        // Reference: append the all-ones column and run the plain kernel.
        let mut xt = Vec::with_capacity(rows * (d + 1));
        for r in 0..rows {
            xt.extend_from_slice(&x[r * d..(r + 1) * d]);
            xt.push(1.0);
        }
        let mut reference = vec![0.0; rows * c];
        matmul_nt_serial(&xt, &wb, d + 1, &mut reference);
        for (a, b) in out.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn dot_unrolled_matches_dot_to_fp_tolerance() {
        let mut rng = SmallRng::seed_from_u64(8);
        for len in [0, 1, 3, 4, 5, 8, 17, 64, 257] {
            let x = rand_vec(len, &mut rng);
            let y = rand_vec(len, &mut rng);
            let plain = crate::vector::dot(&x, &y);
            let fast = dot_unrolled(&x, &y);
            assert!(
                (plain - fast).abs() <= 1e-12 * plain.abs().max(1.0),
                "len {len}: {plain} vs {fast}"
            );
        }
    }

    #[test]
    fn dot_unrolled_is_deterministic() {
        let mut rng = SmallRng::seed_from_u64(9);
        let x = rand_vec(103, &mut rng);
        let y = rand_vec(103, &mut rng);
        assert_eq!(
            dot_unrolled(&x, &y).to_bits(),
            dot_unrolled(&x, &y).to_bits()
        );
    }

    #[test]
    fn affine_unrolled_matches_affine_to_fp_tolerance() {
        let mut rng = SmallRng::seed_from_u64(10);
        for (rows, c, d) in [(1, 2, 1), (33, 3, 5), (70, 4, 32), (9, 2, 65)] {
            let x = rand_vec(rows * d, &mut rng);
            let wb = rand_vec(c * (d + 1), &mut rng);
            let mut plain = vec![0.0; rows * c];
            let mut fast = vec![0.0; rows * c];
            affine_nt(&x, &wb, d, &mut plain);
            affine_nt_unrolled(&x, &wb, d, &mut fast);
            for (a, b) in plain.iter().zip(&fast) {
                assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn dot_mixed_f32_tracks_f64_dot() {
        let mut rng = SmallRng::seed_from_u64(11);
        for len in [0, 1, 3, 4, 63, 64, 65, 130, 257] {
            let x = rand_vec(len, &mut rng);
            let y = rand_vec(len, &mut rng);
            let exact = crate::vector::dot(&x, &y);
            let xf: Vec<f32> = x.iter().map(|&v| v as f32).collect();
            let yf: Vec<f32> = y.iter().map(|&v| v as f32).collect();
            let mixed = dot_mixed_f32(&xf, &yf);
            // Demotion alone costs ~2⁻²⁴ per operand; 1e-4 is the
            // documented backend contract, comfortably above it.
            let scale: f64 = x.iter().zip(&y).map(|(a, b)| (a * b).abs()).sum();
            assert!(
                (mixed - exact).abs() <= 1e-4 * scale.max(1.0),
                "len {len}: {mixed} vs {exact}"
            );
        }
    }

    #[test]
    fn dot_mixed_f32_is_deterministic() {
        let mut rng = SmallRng::seed_from_u64(12);
        let x: Vec<f32> = (0..200).map(|_| rng.gen_range(-1.0..1.0) as f32).collect();
        let y: Vec<f32> = (0..200).map(|_| rng.gen_range(-1.0..1.0) as f32).collect();
        assert_eq!(
            dot_mixed_f32(&x, &y).to_bits(),
            dot_mixed_f32(&x, &y).to_bits()
        );
    }

    #[test]
    fn affine_mixed_f32_matches_affine_to_backend_tolerance() {
        let mut rng = SmallRng::seed_from_u64(13);
        for (rows, c, d) in [(1, 2, 1), (33, 3, 5), (70, 4, 32), (9, 2, 130)] {
            let x = rand_vec(rows * d, &mut rng);
            let wb = rand_vec(c * (d + 1), &mut rng);
            let mut exact = vec![0.0; rows * c];
            affine_nt(&x, &wb, d, &mut exact);
            let mut ws = Workspace::new();
            let xf = ws.take_f32_from(&x);
            let wbf = ws.take_f32_from(&wb);
            let mut mixed = vec![0.0; rows * c];
            affine_nt_mixed_f32(&xf, &wbf, d, &mut mixed);
            for (a, b) in exact.iter().zip(&mixed) {
                assert!(
                    (a - b).abs() <= 1e-4 * a.abs().max(1.0),
                    "{rows}x{c}x{d}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn gather_matvec_matches_per_row_dots() {
        let mut rng = SmallRng::seed_from_u64(3);
        let (n, k) = (400, 9);
        let a = rand_vec(n * k, &mut rng);
        let x = rand_vec(k, &mut rng);
        // A scattered, repeated row selection longer than the grain.
        let rows: Vec<usize> = (0..300).map(|i| (i * 7 + 3) % n).collect();
        let mut out = vec![0.0; rows.len()];
        gather_matvec(&a, k, &rows, &x, &mut out);
        let mut serial = vec![0.0; rows.len()];
        gather_matvec_serial(&a, k, &rows, &x, &mut serial);
        assert_eq!(out, serial, "dispatching vs serial must be bit-identical");
        for (o, &r) in out.iter().zip(&rows) {
            let expect = crate::vector::dot(&a[r * k..(r + 1) * k], &x);
            assert_eq!(*o, expect, "row {r}");
        }
    }

    #[test]
    #[should_panic(expected = "out shape mismatch")]
    fn matmul_nt_rejects_bad_out() {
        let mut out = vec![0.0; 3];
        matmul_nt(&[1.0, 2.0], &[3.0, 4.0], 2, &mut out);
    }

    #[test]
    #[should_panic(expected = "row 4 out of 4")]
    fn gather_rejects_out_of_range_row() {
        let mut out = vec![0.0; 1];
        gather_matvec(&[0.0; 8], 2, &[4], &[1.0, 1.0], &mut out);
    }
}
