//! Free functions over `&[f64]` slices.
//!
//! These are the hot kernels of the whole reproduction: every influence
//! evaluation, SGD step and DeltaGrad replay bottoms out in `dot`/`axpy`
//! calls. They are written as straight loops over slices so the compiler
//! can vectorize them, and they assert matching lengths in debug builds
//! only.

/// Dot product `xᵀy`.
///
/// # Panics
/// Panics in debug builds if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y += alpha * x` (the BLAS `axpy` kernel).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha` in place.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean (L2) norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Squared Euclidean norm `‖x‖₂²`.
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// Infinity norm `max |x_i|` (0 for an empty slice).
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// Element-wise difference `x - y` into a fresh vector.
#[inline]
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    debug_assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Element-wise sum `x + y` into a fresh vector.
#[inline]
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    debug_assert_eq!(x.len(), y.len(), "add: length mismatch");
    x.iter().zip(y).map(|(a, b)| a + b).collect()
}

/// Overwrite `dst` with `src`.
#[inline]
pub fn copy_from(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len(), "copy_from: length mismatch");
    dst.copy_from_slice(src);
}

/// Set every element of `x` to zero.
#[inline]
pub fn fill_zero(x: &mut [f64]) {
    x.fill(0.0);
}

/// Euclidean distance `‖x − y‖₂`.
#[inline]
pub fn distance(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "distance: length mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Linear combination `alpha*x + beta*y` into a fresh vector.
#[inline]
pub fn lincomb(alpha: f64, x: &[f64], beta: f64, y: &[f64]) -> Vec<f64> {
    debug_assert_eq!(x.len(), y.len(), "lincomb: length mismatch");
    x.iter().zip(y).map(|(a, b)| alpha * a + beta * b).collect()
}

/// Index of the maximum element (first one on ties).
///
/// # Panics
/// Panics if `x` is empty.
#[inline]
pub fn argmax(x: &[f64]) -> usize {
    assert!(!x.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, v) in x.iter().enumerate().skip(1) {
        if *v > x[best] {
            best = i;
        }
    }
    best
}

/// Index of the minimum element (first one on ties).
///
/// # Panics
/// Panics if `x` is empty.
#[inline]
pub fn argmin(x: &[f64]) -> usize {
    assert!(!x.is_empty(), "argmin of empty slice");
    let mut best = 0;
    for (i, v) in x.iter().enumerate().skip(1) {
        if *v < x[best] {
            best = i;
        }
    }
    best
}

/// Numerically stable softmax of `x` into a fresh vector.
///
/// Uses the max-subtraction trick so that `exp` never overflows; the output
/// always sums to 1 (up to rounding) and every entry lies in `(0, 1]`.
pub fn softmax(x: &[f64]) -> Vec<f64> {
    let mut out = x.to_vec();
    softmax_in_place(&mut out);
    out
}

/// In-place numerically stable softmax.
pub fn softmax_in_place(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let m = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in x.iter_mut() {
        *v = (*v - m).exp();
        sum += *v;
    }
    for v in x.iter_mut() {
        *v /= sum;
    }
}

/// `log(Σ exp(x_i))` computed stably.
pub fn log_sum_exp(x: &[f64]) -> f64 {
    assert!(!x.is_empty(), "log_sum_exp of empty slice");
    let m = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() {
        return m;
    }
    m + x.iter().map(|v| (v - m).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![2.0, -4.0];
        scale(0.5, &mut x);
        assert_eq!(x, vec![1.0, -2.0]);
    }

    #[test]
    fn norms() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm2_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(norm_inf(&[1.0, -7.0, 3.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn add_sub_lincomb() {
        assert_eq!(sub(&[3.0, 2.0], &[1.0, 5.0]), vec![2.0, -3.0]);
        assert_eq!(add(&[3.0, 2.0], &[1.0, 5.0]), vec![4.0, 7.0]);
        assert_eq!(
            lincomb(2.0, &[1.0, 0.0], -1.0, &[0.0, 3.0]),
            vec![2.0, -3.0]
        );
    }

    #[test]
    fn distance_symmetric() {
        let a = [1.0, 2.0];
        let b = [4.0, 6.0];
        assert!((distance(&a, &b) - 5.0).abs() < 1e-12);
        assert_eq!(distance(&a, &b), distance(&b, &a));
    }

    #[test]
    fn argmax_argmin_first_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmin(&[2.0, 0.5, 0.5]), 1);
        assert_eq!(argmax(&[-1.0]), 0);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1001.0, 999.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|v| v.is_finite() && *v > 0.0));
        assert_eq!(argmax(&p), 1);
    }

    #[test]
    fn softmax_uniform_for_equal_logits() {
        let p = softmax(&[5.0, 5.0, 5.0, 5.0]);
        for v in &p {
            assert!((v - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn log_sum_exp_matches_naive_when_safe() {
        let x = [0.1f64, -0.3, 0.7];
        let naive = x.iter().map(|v| v.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&x) - naive).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_large_values() {
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + 2f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn copy_and_zero() {
        let mut d = vec![0.0; 3];
        copy_from(&mut d, &[1.0, 2.0, 3.0]);
        assert_eq!(d, vec![1.0, 2.0, 3.0]);
        fill_zero(&mut d);
        assert_eq!(d, vec![0.0; 3]);
    }
}
