//! Allocation-count regression test for [`chef_linalg::Workspace`].
//!
//! The pool's contract is that steady-state hot loops allocate nothing.
//! Before the best-fit fix the pool pop was size-blind: a small
//! `take(8)` could steal the one large-capacity buffer, forcing the
//! next GEMM-panel `take` to reallocate on **every** iteration. The
//! interleaved small/large pattern below reproduces exactly that
//! failure mode, and a counting global allocator proves the warm pool
//! serves it allocation-free.
//!
//! This file deliberately holds a single `#[test]`: the harness runs
//! tests in one process, and any concurrent test's allocations would
//! race the counter. The counter is additionally gated on a
//! thread-local flag so the harness's *own* threads (timekeeping,
//! captured-output buffering) can't be miscounted as pool traffic —
//! only allocations made by the test thread inside the measured window
//! are recorded.

use chef_linalg::Workspace;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator that counts every `alloc`/`realloc` made while the
/// current thread has [`COUNTING`] set.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

/// True when this thread is inside the measured window. `try_with`
/// keeps the allocator safe during TLS construction/teardown.
fn counting_here() -> bool {
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One hot-loop iteration in the shape of `score_block`: a small
/// scratch take racing a large panel take, returned in an order that
/// leaves the small buffer on top of a naive LIFO pool.
fn hot_iteration(ws: &mut Workspace) -> f64 {
    let small = ws.take_uninit(8);
    let big = ws.take_uninit(64 * 64);
    let small_f32 = ws.take_f32_from(&small);
    let acc = small.iter().sum::<f64>()
        + big.iter().take(4).sum::<f64>()
        + small_f32.iter().sum::<f32>() as f64;
    ws.put_f32(small_f32);
    ws.put(small);
    ws.put(big);
    acc
}

#[test]
fn steady_state_hot_loop_allocates_nothing() {
    let mut ws = Workspace::new();
    // Warm-up: every buffer size the loop uses gets pooled once.
    let mut sink = hot_iteration(&mut ws);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(true));
    for _ in 0..1000 {
        sink += hot_iteration(&mut ws);
    }
    COUNTING.with(|c| c.set(false));
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm Workspace allocated in the steady state (sink {sink})"
    );
}
