//! Property-based tests for the linear-algebra substrate.

use chef_linalg::cg::{conjugate_gradient, CgConfig};
use chef_linalg::power::{power_method, PowerConfig};
use chef_linalg::vector;
use chef_linalg::Matrix;
use proptest::prelude::*;

/// Random SPD matrix `MᵀM + n·I` built from a flat coefficient vector.
fn spd_from(coeffs: &[f64], n: usize) -> Matrix {
    let m = Matrix::from_vec(n, n, coeffs[..n * n].to_vec());
    let mut a = m.transpose().matmul(&m);
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cg_solves_random_spd_systems(
        coeffs in prop::collection::vec(-1.0f64..1.0, 16),
        x in prop::collection::vec(-5.0f64..5.0, 4),
    ) {
        let a = spd_from(&coeffs, 4);
        let mut b = vec![0.0; 4];
        a.matvec(&x, &mut b);
        let out = conjugate_gradient(&a, &b, &CgConfig::default());
        prop_assert!(out.converged);
        for (got, want) in out.x.iter().zip(&x) {
            prop_assert!((got - want).abs() < 1e-5, "{got} vs {want}");
        }
    }

    #[test]
    fn power_method_dominates_rayleigh_quotients(
        coeffs in prop::collection::vec(-1.0f64..1.0, 16),
        probe in prop::collection::vec(-1.0f64..1.0, 4),
    ) {
        let a = spd_from(&coeffs, 4);
        let out = power_method(&a, &PowerConfig::default());
        // λ_max ≥ vᵀAv / vᵀv for every nonzero v.
        let pn = vector::norm2_sq(&probe);
        prop_assume!(pn > 1e-6);
        let mut ap = vec![0.0; 4];
        a.matvec(&probe, &mut ap);
        let rayleigh = vector::dot(&probe, &ap) / pn;
        prop_assert!(out.eigenvalue >= rayleigh - 1e-6 * out.eigenvalue.abs().max(1.0));
    }

    #[test]
    fn dot_is_bilinear(
        x in prop::collection::vec(-10.0f64..10.0, 8),
        y in prop::collection::vec(-10.0f64..10.0, 8),
        z in prop::collection::vec(-10.0f64..10.0, 8),
        a in -5.0f64..5.0,
    ) {
        let ax_plus_z: Vec<f64> = x.iter().zip(&z).map(|(xi, zi)| a * xi + zi).collect();
        let lhs = vector::dot(&ax_plus_z, &y);
        let rhs = a * vector::dot(&x, &y) + vector::dot(&z, &y);
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs() + rhs.abs()));
    }

    #[test]
    fn softmax_is_simplex_valued(x in prop::collection::vec(-50.0f64..50.0, 1..8)) {
        let p = vector::softmax(&x);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|v| *v >= 0.0 && *v <= 1.0));
    }

    #[test]
    fn softmax_is_shift_invariant(
        x in prop::collection::vec(-20.0f64..20.0, 2..6),
        c in -100.0f64..100.0,
    ) {
        let shifted: Vec<f64> = x.iter().map(|v| v + c).collect();
        let p1 = vector::softmax(&x);
        let p2 = vector::softmax(&shifted);
        for (a, b) in p1.iter().zip(&p2) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn matvec_is_linear(
        coeffs in prop::collection::vec(-3.0f64..3.0, 12),
        x in prop::collection::vec(-3.0f64..3.0, 4),
        y in prop::collection::vec(-3.0f64..3.0, 4),
    ) {
        let a = Matrix::from_vec(3, 4, coeffs);
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let mut ax = vec![0.0; 3];
        let mut ay = vec![0.0; 3];
        let mut asum = vec![0.0; 3];
        a.matvec(&x, &mut ax);
        a.matvec(&y, &mut ay);
        a.matvec(&sum, &mut asum);
        for i in 0..3 {
            prop_assert!((asum[i] - ax[i] - ay[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_is_involution(coeffs in prop::collection::vec(-3.0f64..3.0, 12)) {
        let a = Matrix::from_vec(3, 4, coeffs);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn spd_quadratic_form_is_positive(
        coeffs in prop::collection::vec(-1.0f64..1.0, 16),
        v in prop::collection::vec(-5.0f64..5.0, 4),
    ) {
        prop_assume!(vector::norm2(&v) > 1e-3);
        let a = spd_from(&coeffs, 4);
        let mut av = vec![0.0; 4];
        a.matvec(&v, &mut av);
        prop_assert!(vector::dot(&v, &av) > 0.0);
    }
}
