//! Property-based tests for the linear-algebra substrate.

use chef_linalg::cg::{conjugate_gradient, CgConfig};
use chef_linalg::power::{power_method, PowerConfig};
use chef_linalg::vector;
use chef_linalg::{LbfgsBuffer, Matrix};
use proptest::prelude::*;

/// Random SPD matrix `MᵀM + n·I` built from a flat coefficient vector.
fn spd_from(coeffs: &[f64], n: usize) -> Matrix {
    let m = Matrix::from_vec(n, n, coeffs[..n * n].to_vec());
    let mut a = m.transpose().matmul(&m);
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cg_solves_random_spd_systems(
        coeffs in prop::collection::vec(-1.0f64..1.0, 16),
        x in prop::collection::vec(-5.0f64..5.0, 4),
    ) {
        let a = spd_from(&coeffs, 4);
        let mut b = vec![0.0; 4];
        a.matvec(&x, &mut b);
        let out = conjugate_gradient(&a, &b, &CgConfig::default());
        prop_assert!(out.converged);
        for (got, want) in out.x.iter().zip(&x) {
            prop_assert!((got - want).abs() < 1e-5, "{got} vs {want}");
        }
    }

    #[test]
    fn power_method_dominates_rayleigh_quotients(
        coeffs in prop::collection::vec(-1.0f64..1.0, 16),
        probe in prop::collection::vec(-1.0f64..1.0, 4),
    ) {
        let a = spd_from(&coeffs, 4);
        let out = power_method(&a, &PowerConfig::default());
        // λ_max ≥ vᵀAv / vᵀv for every nonzero v.
        let pn = vector::norm2_sq(&probe);
        prop_assume!(pn > 1e-6);
        let mut ap = vec![0.0; 4];
        a.matvec(&probe, &mut ap);
        let rayleigh = vector::dot(&probe, &ap) / pn;
        prop_assert!(out.eigenvalue >= rayleigh - 1e-6 * out.eigenvalue.abs().max(1.0));
    }

    #[test]
    fn dot_is_bilinear(
        x in prop::collection::vec(-10.0f64..10.0, 8),
        y in prop::collection::vec(-10.0f64..10.0, 8),
        z in prop::collection::vec(-10.0f64..10.0, 8),
        a in -5.0f64..5.0,
    ) {
        let ax_plus_z: Vec<f64> = x.iter().zip(&z).map(|(xi, zi)| a * xi + zi).collect();
        let lhs = vector::dot(&ax_plus_z, &y);
        let rhs = a * vector::dot(&x, &y) + vector::dot(&z, &y);
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs() + rhs.abs()));
    }

    #[test]
    fn softmax_is_simplex_valued(x in prop::collection::vec(-50.0f64..50.0, 1..8)) {
        let p = vector::softmax(&x);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|v| *v >= 0.0 && *v <= 1.0));
    }

    #[test]
    fn softmax_is_shift_invariant(
        x in prop::collection::vec(-20.0f64..20.0, 2..6),
        c in -100.0f64..100.0,
    ) {
        let shifted: Vec<f64> = x.iter().map(|v| v + c).collect();
        let p1 = vector::softmax(&x);
        let p2 = vector::softmax(&shifted);
        for (a, b) in p1.iter().zip(&p2) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn matvec_is_linear(
        coeffs in prop::collection::vec(-3.0f64..3.0, 12),
        x in prop::collection::vec(-3.0f64..3.0, 4),
        y in prop::collection::vec(-3.0f64..3.0, 4),
    ) {
        let a = Matrix::from_vec(3, 4, coeffs);
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let mut ax = vec![0.0; 3];
        let mut ay = vec![0.0; 3];
        let mut asum = vec![0.0; 3];
        a.matvec(&x, &mut ax);
        a.matvec(&y, &mut ay);
        a.matvec(&sum, &mut asum);
        for i in 0..3 {
            prop_assert!((asum[i] - ax[i] - ay[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_is_involution(coeffs in prop::collection::vec(-3.0f64..3.0, 12)) {
        let a = Matrix::from_vec(3, 4, coeffs);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn spd_quadratic_form_is_positive(
        coeffs in prop::collection::vec(-1.0f64..1.0, 16),
        v in prop::collection::vec(-5.0f64..5.0, 4),
    ) {
        prop_assume!(vector::norm2(&v) > 1e-3);
        let a = spd_from(&coeffs, 4);
        let mut av = vec![0.0; 4];
        a.matvec(&v, &mut av);
        prop_assert!(vector::dot(&v, &av) > 0.0);
    }

    #[test]
    fn lbfgs_two_loop_matches_dense_inverse_apply(
        coeffs in prop::collection::vec(-1.0f64..1.0, 16),
        steps in prop::collection::vec(prop::collection::vec(-1.0f64..1.0, 4), 6),
        probe in prop::collection::vec(-2.0f64..2.0, 4),
        // DeltaGrad-L runs with m₀ = 2; cover the neighbouring sizes too.
        cap_idx in 0usize..3,
    ) {
        let capacity = [1usize, 2, 4][cap_idx];
        let dim = 4;
        let a = spd_from(&coeffs, dim);
        let mut buf = LbfgsBuffer::new(capacity, dim);
        let mut stored = 0usize;
        for s in &steps {
            prop_assume!(vector::norm2(s) > 1e-3);
            let mut y = vec![0.0; dim];
            a.matvec(s, &mut y);
            if buf.push(s, &y) {
                stored += 1;
            }
        }
        prop_assume!(stored > 0);

        // Materialize the quasi-Hessian densely, column by column, and
        // invert it with plain Gaussian elimination: the dense reference
        // for the two-loop recursion.
        let mut b_dense = Matrix::zeros(dim, dim);
        for j in 0..dim {
            let mut e = vec![0.0; dim];
            e[j] = 1.0;
            let col = buf.hessian_vec(&e);
            for i in 0..dim {
                b_dense[(i, j)] = col[i];
            }
        }
        let dense = dense_solve(&b_dense, &probe);
        let two_loop = buf.inv_hessian_vec(&probe);
        for (got, want) in two_loop.iter().zip(&dense) {
            prop_assert!(
                (got - want).abs() <= 1e-8 * (1.0 + want.abs()),
                "two-loop {got} vs dense {want} (m0={capacity})"
            );
        }
    }
}

/// Solve `A x = b` by Gaussian elimination with partial pivoting — the
/// dense reference the L-BFGS property test compares against.
fn dense_solve(a: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = a.rows();
    let mut m: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let mut row = a.row(i).to_vec();
            row.push(b[i]);
            row
        })
        .collect();
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&i, &j| m[i][col].abs().total_cmp(&m[j][col].abs()))
            .unwrap();
        m.swap(col, pivot);
        assert!(m[col][col].abs() > 1e-12, "singular dense reference");
        for row in 0..n {
            if row != col {
                let f = m[row][col] / m[col][col];
                let pivot_row = m[col][col..=n].to_vec();
                for (dst, src) in m[row][col..=n].iter_mut().zip(&pivot_row) {
                    *dst -= f * src;
                }
            }
        }
    }
    (0..n).map(|i| m[i][n] / m[i][i]).collect()
}
