//! # chef-data
//!
//! Synthetic dataset substrate for the CHEF reproduction.
//!
//! The paper evaluates on three gated medical-image datasets (MIMIC-CXR,
//! Chexpert, Retina) and three crowdsourced datasets (Fashion, Fact,
//! Twitter), all passed through frozen ResNet50/BERT feature extractors.
//! None of those downloads is available here, so this crate generates
//! **controlled Gaussian-mixture embedding clouds** with per-dataset
//! profiles matching the published statistics (relative split sizes from
//! Table 3, class imbalance, difficulty, ground-truth noise). Because the
//! paper itself trains logistic regression on frozen embeddings, the
//! embedding distribution is the only thing the downstream pipeline ever
//! sees — a mixture with matching overlap exercises identical code paths
//! and preserves the *relative* behaviour the tables report (see
//! DESIGN.md §4 for the substitution argument).
//!
//! [`DatasetSpec`] describes a dataset; [`generate`] materializes a
//! train/val/test [`Split`] whose training labels start as ground truth —
//! the `chef-weak` crate then overwrites them with probabilistic labels.
//!
//! For datasets too large for RAM, the [`store`] module provides the
//! out-of-core store substrate: [`generate_train_store`] streams the
//! training part directly into a sharded on-disk columnar store (a
//! `store.v2` directory carrying per-block checksums) that
//! [`MmapStore`] serves back through `chef_model::DatasetStore` with
//! features memory-mapped instead of heap-allocated, integrity
//! verification eager, first-touch-lazy or off per [`IntegrityMode`],
//! and an optional background verify-and-warm prefetch thread
//! (`parallel` feature; DESIGN.md §15).

#![warn(missing_docs)]

pub mod csv;
pub mod generator;
pub mod spec;
pub mod store;

pub use csv::{read_dataset, read_split, write_dataset, write_split, CsvError};
pub use generator::{generate, generate_train_store, Split};
pub use spec::{by_name, paper_suite, DatasetKind, DatasetSpec};
pub use store::{IntegrityMode, Manifest, MmapStore, StoreError, StoreOptions, StoreWriter};
