//! Out-of-core sharded dataset store (`store.v1`).
//!
//! The in-memory [`Dataset`](chef_model::Dataset) keeps the whole
//! `n × d` feature matrix in
//! one heap allocation, which caps the reachable scale at available
//! RAM. This module stores the same data as a **directory of
//! fixed-width row-major shards** plus a small manifest, and serves it
//! back through the [`DatasetStore`] trait with features left on disk:
//!
//! ```text
//! store-dir/
//!   store.v1           versioned manifest: dims, chunk size, checksums
//!   chunk-00000.bin    rows 0..chunk_rows, raw f64 LE, row-major
//!   chunk-00001.bin    rows chunk_rows..2*chunk_rows
//!   ...
//!   labels.bin         soft labels + clean flags + ground truth
//! ```
//!
//! * [`StoreWriter`] builds a store **streaming**, one row at a time,
//!   holding only the current chunk (a few MB) plus the label columns
//!   in memory — so a store larger than RAM can be written.
//! * [`MmapStore`] opens a store read-only. Feature chunks are
//!   memory-mapped (`MAP_SHARED`, via the offline `memmap` shim) so the
//!   kernel's page cache owns residency; the [`DatasetStore`] hint
//!   methods translate to `madvise` and a bounded window of
//!   recently-hinted chunks is kept resident (older chunks are released
//!   with `MADV_DONTNEED`). When `mmap` itself is unavailable the store
//!   falls back to positional reads (`pread`) that load chunks into
//!   owned buffers — a correctness fallback, not memory-bounded.
//! * Labels, clean flags and ground truth are deliberately
//!   **RAM-resident** (they are O(n), not O(n·d), and the cleaning loop
//!   mutates them every round). Label mutations are in-memory only:
//!   durability across crashes belongs to the `checkpoint.v1` subsystem,
//!   which re-applies its label patches to a freshly opened store on
//!   resume.
//!
//! Integrity: the manifest records an FNV-1a-64 checksum and byte size
//! per shard (and for `labels.bin`). [`MmapStore::open`] rejects an
//! unknown manifest version and detects torn shards (size or checksum
//! mismatch) before serving any data; verification streams through
//! `pread` with a small reusable buffer so it never inflates the
//! process's resident set. See DESIGN.md §15 for the full layout and
//! the determinism argument for sharded selector passes.

use chef_model::{DatasetStore, SoftLabel};
use memmap::Mmap;
use std::collections::VecDeque;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// First line of every manifest this version of the code can read.
pub const STORE_VERSION: &str = "chef-store.v1";
/// Manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "store.v1";
/// Label sidecar file name inside a store directory.
pub const LABELS_FILE: &str = "labels.bin";

/// File name of shard `idx` (`chunk-00000.bin`, `chunk-00001.bin`, …).
pub fn chunk_file_name(idx: usize) -> String {
    format!("chunk-{idx:05}.bin")
}

// FNV-1a 64-bit, streaming form. chef-core's checkpoint module has the
// same function, but chef-core depends on chef-data (not vice versa),
// so the store keeps its own copy rather than inverting the crate DAG.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Errors opening or validating a `store.v1` directory.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The manifest's version line is not [`STORE_VERSION`].
    Version(String),
    /// The manifest is syntactically malformed.
    Format(String),
    /// A shard or sidecar failed integrity checks (torn write).
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Version(v) => {
                write!(
                    f,
                    "unknown store version {v:?} (expected {STORE_VERSION:?})"
                )
            }
            StoreError::Format(m) => write!(f, "malformed store manifest: {m}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Per-shard record in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Number of rows stored in this shard.
    pub rows: usize,
    /// Exact byte size of the shard file (`rows × dim × 8`).
    pub bytes: u64,
    /// FNV-1a-64 checksum of the shard file's contents.
    pub fnv: u64,
}

/// Parsed `store.v1` manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Total number of samples across all shards.
    pub n: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Rows per shard (every shard but the last holds exactly this many).
    pub chunk_rows: usize,
    /// Byte size of `labels.bin`.
    pub labels_bytes: u64,
    /// FNV-1a-64 checksum of `labels.bin`.
    pub labels_fnv: u64,
    /// Shard records, in shard order.
    pub chunks: Vec<ChunkMeta>,
}

impl Manifest {
    /// Render the manifest in its on-disk line format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(STORE_VERSION);
        out.push('\n');
        out.push_str(&format!("n={}\n", self.n));
        out.push_str(&format!("dim={}\n", self.dim));
        out.push_str(&format!("num_classes={}\n", self.num_classes));
        out.push_str(&format!("chunk_rows={}\n", self.chunk_rows));
        out.push_str(&format!(
            "labels bytes={} fnv={:016x}\n",
            self.labels_bytes, self.labels_fnv
        ));
        out.push_str(&format!("chunks={}\n", self.chunks.len()));
        for (i, c) in self.chunks.iter().enumerate() {
            out.push_str(&format!(
                "chunk={i} rows={} bytes={} fnv={:016x}\n",
                c.rows, c.bytes, c.fnv
            ));
        }
        out
    }

    /// Parse a manifest from its on-disk text, rejecting unknown
    /// versions before looking at anything else.
    pub fn parse(text: &str) -> Result<Manifest, StoreError> {
        let mut lines = text.lines();
        let version = lines.next().unwrap_or("").trim();
        if version != STORE_VERSION {
            return Err(StoreError::Version(version.to_string()));
        }
        fn kv<'a>(line: Option<&'a str>, key: &str) -> Result<&'a str, StoreError> {
            let line = line.ok_or_else(|| StoreError::Format(format!("missing {key} line")))?;
            line.trim()
                .strip_prefix(key)
                .and_then(|rest| rest.strip_prefix('='))
                .ok_or_else(|| StoreError::Format(format!("expected `{key}=...`, got {line:?}")))
        }
        fn num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, StoreError> {
            s.parse()
                .map_err(|_| StoreError::Format(format!("bad {what}: {s:?}")))
        }
        let n: usize = num(kv(lines.next(), "n")?, "n")?;
        let dim: usize = num(kv(lines.next(), "dim")?, "dim")?;
        let num_classes: usize = num(kv(lines.next(), "num_classes")?, "num_classes")?;
        let chunk_rows: usize = num(kv(lines.next(), "chunk_rows")?, "chunk_rows")?;
        if dim == 0 || num_classes == 0 || chunk_rows == 0 {
            return Err(StoreError::Format(
                "dim, num_classes and chunk_rows must be positive".into(),
            ));
        }
        let labels_line = lines
            .next()
            .ok_or_else(|| StoreError::Format("missing labels line".into()))?;
        let (labels_bytes, labels_fnv) = parse_sized_entry(labels_line, "labels")?;
        let num_chunks: usize = num(kv(lines.next(), "chunks")?, "chunks")?;
        let mut chunks = Vec::with_capacity(num_chunks);
        for i in 0..num_chunks {
            let line = lines
                .next()
                .ok_or_else(|| StoreError::Format(format!("missing chunk {i} line")))?;
            let rest = line
                .trim()
                .strip_prefix(&format!("chunk={i} rows="))
                .ok_or_else(|| StoreError::Format(format!("bad chunk line {line:?}")))?;
            let (rows_s, tail) = rest
                .split_once(' ')
                .ok_or_else(|| StoreError::Format(format!("bad chunk line {line:?}")))?;
            let rows: usize = num(rows_s, "chunk rows")?;
            let (bytes, fnv) = parse_sized_entry(&format!("x {tail}"), "x")?;
            chunks.push(ChunkMeta { rows, bytes, fnv });
        }
        let total: usize = chunks.iter().map(|c| c.rows).sum();
        if total != n {
            return Err(StoreError::Format(format!(
                "chunk rows sum to {total}, manifest says n={n}"
            )));
        }
        for (i, c) in chunks.iter().enumerate() {
            let expect_rows = if i + 1 < chunks.len() {
                chunk_rows
            } else {
                c.rows // last shard may be short
            };
            if c.rows != expect_rows || c.rows == 0 || c.rows > chunk_rows {
                return Err(StoreError::Format(format!(
                    "chunk {i} holds {} rows (chunk_rows={chunk_rows})",
                    c.rows
                )));
            }
            if c.bytes != (c.rows * dim * 8) as u64 {
                return Err(StoreError::Format(format!(
                    "chunk {i} byte size {} does not match rows×dim×8",
                    c.bytes
                )));
            }
        }
        Ok(Manifest {
            n,
            dim,
            num_classes,
            chunk_rows,
            labels_bytes,
            labels_fnv,
            chunks,
        })
    }

    /// Read and parse the manifest inside `dir`.
    pub fn read(dir: &Path) -> Result<Manifest, StoreError> {
        let text = fs::read_to_string(dir.join(MANIFEST_FILE))?;
        Manifest::parse(&text)
    }
}

/// Parse a `<name> bytes=<u64> fnv=<hex16>` manifest line.
fn parse_sized_entry(line: &str, name: &str) -> Result<(u64, u64), StoreError> {
    let parts: Vec<&str> = line.trim().split(' ').collect();
    let bad = || StoreError::Format(format!("bad {name} line {line:?}"));
    if parts.len() != 3 {
        return Err(bad());
    }
    let bytes = parts[1]
        .strip_prefix("bytes=")
        .and_then(|s| s.parse().ok())
        .ok_or_else(bad)?;
    let fnv = parts[2]
        .strip_prefix("fnv=")
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(bad)?;
    Ok((bytes, fnv))
}

/// Streaming store builder: create, [`push_row`](Self::push_row) `n`
/// times, [`finish`](Self::finish). Memory use is one chunk's worth of
/// feature bytes plus the O(n) label columns, independent of how many
/// chunks the finished store holds — which is what lets a
/// larger-than-RAM store be generated row by row.
#[derive(Debug)]
pub struct StoreWriter {
    dir: PathBuf,
    dim: usize,
    num_classes: usize,
    chunk_rows: usize,
    buf: Vec<u8>,
    rows_in_chunk: usize,
    chunks: Vec<ChunkMeta>,
    labels: Vec<SoftLabel>,
    clean: Vec<bool>,
    truth: Vec<Option<usize>>,
}

impl StoreWriter {
    /// Create (or truncate) a store directory.
    pub fn create(
        dir: &Path,
        dim: usize,
        num_classes: usize,
        chunk_rows: usize,
    ) -> io::Result<StoreWriter> {
        assert!(dim > 0 && num_classes > 0 && chunk_rows > 0);
        fs::create_dir_all(dir)?;
        Ok(StoreWriter {
            dir: dir.to_path_buf(),
            dim,
            num_classes,
            chunk_rows,
            buf: Vec::with_capacity(chunk_rows * dim * 8),
            rows_in_chunk: 0,
            chunks: Vec::new(),
            labels: Vec::new(),
            clean: Vec::new(),
            truth: Vec::new(),
        })
    }

    /// Append one sample. Rows land in shards in append order, so row
    /// `i` of the finished store is the `i`-th pushed row.
    pub fn push_row(
        &mut self,
        features: &[f64],
        label: SoftLabel,
        clean: bool,
        truth: Option<usize>,
    ) -> io::Result<()> {
        assert_eq!(features.len(), self.dim, "feature row has wrong width");
        assert_eq!(label.num_classes(), self.num_classes);
        for &x in features {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
        self.labels.push(label);
        self.clean.push(clean);
        self.truth.push(truth);
        self.rows_in_chunk += 1;
        if self.rows_in_chunk == self.chunk_rows {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.rows_in_chunk == 0 {
            return Ok(());
        }
        let path = self.dir.join(chunk_file_name(self.chunks.len()));
        let mut f = File::create(&path)?;
        f.write_all(&self.buf)?;
        f.sync_all()?;
        self.chunks.push(ChunkMeta {
            rows: self.rows_in_chunk,
            bytes: self.buf.len() as u64,
            fnv: fnv1a64(FNV_OFFSET, &self.buf),
        });
        self.buf.clear();
        self.rows_in_chunk = 0;
        Ok(())
    }

    /// Flush the final (possibly short) shard, write `labels.bin` and
    /// the manifest. The manifest is written last so a crash mid-write
    /// leaves a directory that [`MmapStore::open`] refuses to serve.
    pub fn finish(mut self) -> io::Result<Manifest> {
        self.flush_chunk()?;
        let labels_buf = encode_labels(&self.labels, &self.clean, &self.truth, self.num_classes);
        let labels_path = self.dir.join(LABELS_FILE);
        let mut f = File::create(&labels_path)?;
        f.write_all(&labels_buf)?;
        f.sync_all()?;
        let manifest = Manifest {
            n: self.labels.len(),
            dim: self.dim,
            num_classes: self.num_classes,
            chunk_rows: self.chunk_rows,
            labels_bytes: labels_buf.len() as u64,
            labels_fnv: fnv1a64(FNV_OFFSET, &labels_buf),
            chunks: std::mem::take(&mut self.chunks),
        };
        let mut f = File::create(self.dir.join(MANIFEST_FILE))?;
        f.write_all(manifest.render().as_bytes())?;
        f.sync_all()?;
        Ok(manifest)
    }
}

/// Copy any [`DatasetStore`] into a fresh `store.v1` directory.
pub fn write_store(data: &dyn DatasetStore, dir: &Path, chunk_rows: usize) -> io::Result<Manifest> {
    let mut w = StoreWriter::create(dir, data.dim(), data.num_classes(), chunk_rows)?;
    for i in 0..data.len() {
        w.push_row(
            data.feature(i),
            data.label(i).clone(),
            data.is_clean(i),
            data.ground_truth(i),
        )?;
    }
    w.finish()
}

// labels.bin layout: [n × C f64 LE probs][n × u8 clean][n × i64 LE truth]
// with truth = −1 encoding "no ground truth".
fn encode_labels(
    labels: &[SoftLabel],
    clean: &[bool],
    truth: &[Option<usize>],
    num_classes: usize,
) -> Vec<u8> {
    let n = labels.len();
    let mut buf = Vec::with_capacity(n * num_classes * 8 + n + n * 8);
    for l in labels {
        for &p in l.probs() {
            buf.extend_from_slice(&p.to_le_bytes());
        }
    }
    for &c in clean {
        buf.push(u8::from(c));
    }
    for t in truth {
        let v: i64 = t.map_or(-1, |c| c as i64);
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf
}

/// The RAM-resident label state decoded from `labels.bin`: soft labels,
/// clean flags, and optional ground truth per sample.
type DecodedLabels = (Vec<SoftLabel>, Vec<bool>, Vec<Option<usize>>);

fn decode_labels(buf: &[u8], n: usize, num_classes: usize) -> Result<DecodedLabels, StoreError> {
    let expect = n * num_classes * 8 + n + n * 8;
    if buf.len() != expect {
        return Err(StoreError::Corrupt(format!(
            "labels.bin is {} bytes, expected {expect}",
            buf.len()
        )));
    }
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let probs = (0..num_classes)
            .map(|c| {
                let at = (i * num_classes + c) * 8;
                f64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
            })
            .collect();
        labels.push(SoftLabel::new(probs));
    }
    let clean_at = n * num_classes * 8;
    let clean: Vec<bool> = buf[clean_at..clean_at + n]
        .iter()
        .map(|&b| b != 0)
        .collect();
    let truth_at = clean_at + n;
    let truth = (0..n)
        .map(|i| {
            let at = truth_at + i * 8;
            let v = i64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
            if v < 0 {
                None
            } else {
                Some(v as usize)
            }
        })
        .collect();
    Ok((labels, clean, truth))
}

/// How an [`MmapStore`] opens its shards.
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Maximum number of chunks the residency window keeps hinted
    /// resident at once; older chunks are released with
    /// `MADV_DONTNEED` as new ones are hinted. `0` disables eviction.
    pub residency_chunks: usize,
    /// Skip `mmap` and use the `pread` fallback (loads every chunk
    /// into an owned buffer — correctness fallback, not memory-bounded).
    pub force_pread: bool,
    /// Verify every shard checksum at open (streamed through a small
    /// reusable buffer; never inflates the resident set). File sizes
    /// are checked regardless.
    pub verify: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            residency_chunks: 32,
            force_pread: false,
            verify: true,
        }
    }
}

#[derive(Debug)]
enum ChunkData {
    Mapped(Mmap),
    Loaded(Vec<f64>),
}

/// A `store.v1` directory opened for the cleaning pipeline: features
/// served from memory-mapped shards, label columns RAM-resident.
///
/// ```
/// use chef_data::store::{MmapStore, StoreWriter};
/// use chef_model::{DatasetStore, SoftLabel};
///
/// let dir = std::env::temp_dir().join(format!("doc-store-{}", std::process::id()));
/// let mut w = StoreWriter::create(&dir, 2, 2, 4).unwrap();
/// for i in 0..10 {
///     let x = [i as f64, -(i as f64)];
///     w.push_row(&x, SoftLabel::onehot(i % 2, 2), false, Some(i % 2)).unwrap();
/// }
/// w.finish().unwrap();
///
/// let store = MmapStore::open(&dir).unwrap();
/// assert_eq!(store.len(), 10);
/// assert_eq!(store.feature(7), &[7.0, -7.0]);
/// assert_eq!(store.contiguous_limit(5), 8); // rows 4..8 share a shard
/// assert_eq!(store.shard_boundaries(), vec![0, 4, 8, 10]);
/// std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug)]
pub struct MmapStore {
    manifest: Manifest,
    data: Vec<ChunkData>,
    labels: Vec<SoftLabel>,
    clean: Vec<bool>,
    truth: Vec<Option<usize>>,
    // Queue of chunk indices currently hinted resident, oldest first.
    // A Mutex (not RwLock) because every operation mutates the queue;
    // contention is per-chunk-transition, not per-row.
    resident: Mutex<VecDeque<usize>>,
    // Last chunk this store noted an access to — a lock-free dedup so
    // the per-read residency tracking costs one atomic load on the
    // straight-line path (consecutive reads land in the same chunk).
    last_touched: std::sync::atomic::AtomicUsize,
    residency_chunks: usize,
}

impl MmapStore {
    /// Open `dir` with default [`StoreOptions`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Version`] for an unknown manifest version,
    /// [`StoreError::Corrupt`] for torn shards (size or checksum
    /// mismatch), [`StoreError::Format`]/[`StoreError::Io`] otherwise.
    pub fn open(dir: &Path) -> Result<MmapStore, StoreError> {
        MmapStore::open_with(dir, StoreOptions::default())
    }

    /// Open `dir` with explicit options.
    pub fn open_with(dir: &Path, opts: StoreOptions) -> Result<MmapStore, StoreError> {
        let manifest = Manifest::read(dir)?;

        // Label sidecar: small (O(n)), so verify and decode eagerly.
        let labels_buf = fs::read(dir.join(LABELS_FILE))?;
        if labels_buf.len() as u64 != manifest.labels_bytes
            || fnv1a64(FNV_OFFSET, &labels_buf) != manifest.labels_fnv
        {
            return Err(StoreError::Corrupt(
                "labels.bin size/checksum mismatch".into(),
            ));
        }
        let (labels, clean, truth) = decode_labels(&labels_buf, manifest.n, manifest.num_classes)?;
        drop(labels_buf);

        let mut data = Vec::with_capacity(manifest.chunks.len());
        let mut scratch = vec![0u8; 1 << 20];
        for (i, meta) in manifest.chunks.iter().enumerate() {
            let path = dir.join(chunk_file_name(i));
            let file = File::open(&path)?;
            let size = file.metadata()?.len();
            if size != meta.bytes {
                return Err(StoreError::Corrupt(format!(
                    "torn shard {}: {size} bytes on disk, manifest says {}",
                    chunk_file_name(i),
                    meta.bytes
                )));
            }
            if opts.verify {
                // Stream the checksum through pread with a reusable 1 MB
                // buffer: the pages go through the page cache, not this
                // process's resident set, so opening a 1M-row store does
                // not cost 1M rows of RSS.
                let mut state = FNV_OFFSET;
                let mut off = 0u64;
                while off < size {
                    let take = scratch.len().min((size - off) as usize);
                    memmap::read_exact_at(&file, &mut scratch[..take], off)?;
                    state = fnv1a64(state, &scratch[..take]);
                    off += take as u64;
                }
                if state != meta.fnv {
                    return Err(StoreError::Corrupt(format!(
                        "torn shard {}: checksum mismatch",
                        chunk_file_name(i)
                    )));
                }
            }
            let chunk = if opts.force_pread {
                ChunkData::Loaded(load_chunk(&file, size)?)
            } else {
                match Mmap::map(&file) {
                    Ok(map)
                        if (map.as_ptr() as usize).is_multiple_of(std::mem::align_of::<f64>()) =>
                    {
                        ChunkData::Mapped(map)
                    }
                    // mmap unavailable (or, theoretically, misaligned):
                    // fall back to loading this chunk via pread.
                    _ => ChunkData::Loaded(load_chunk(&file, size)?),
                }
            };
            data.push(chunk);
        }

        Ok(MmapStore {
            manifest,
            data,
            labels,
            clean,
            truth,
            resident: Mutex::new(VecDeque::new()),
            last_touched: std::sync::atomic::AtomicUsize::new(usize::MAX),
            residency_chunks: opts.residency_chunks,
        })
    }

    /// The parsed manifest this store was opened from.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The `&[f64]` view of shard `c`.
    fn chunk_floats(&self, c: usize) -> &[f64] {
        match &self.data[c] {
            // SAFETY: alignment was checked at open (mmap is page-
            // aligned), the length is a multiple of 8 (size was checked
            // against rows×dim×8), and the mapping lives as long as self.
            ChunkData::Mapped(m) => unsafe {
                std::slice::from_raw_parts(m.as_ptr() as *const f64, m.len() / 8)
            },
            ChunkData::Loaded(v) => v,
        }
    }

    /// Chunk index holding row `i`.
    #[inline]
    fn chunk_of(&self, i: usize) -> usize {
        i / self.manifest.chunk_rows
    }

    /// Hint the given chunks resident and evict the oldest hinted
    /// chunks beyond the residency budget.
    fn touch_chunks(&self, chunks: impl Iterator<Item = usize>) {
        let mut q = self.resident.lock().unwrap();
        for c in chunks {
            if let ChunkData::Mapped(m) = &self.data[c] {
                m.advise_willneed(0, m.len());
            }
            if let Some(pos) = q.iter().position(|&x| x == c) {
                q.remove(pos); // re-touch: move to the back of the window
            }
            q.push_back(c);
            if self.residency_chunks > 0 {
                while q.len() > self.residency_chunks {
                    let old = q.pop_front().unwrap();
                    if let ChunkData::Mapped(m) = &self.data[old] {
                        m.advise_dontneed(0, m.len());
                    }
                }
            }
        }
    }

    /// Release the given chunks (and forget them from the window).
    fn release_chunks(&self, chunks: impl Iterator<Item = usize>) {
        let mut q = self.resident.lock().unwrap();
        for c in chunks {
            if let ChunkData::Mapped(m) = &self.data[c] {
                m.advise_dontneed(0, m.len());
            }
            if let Some(pos) = q.iter().position(|&x| x == c) {
                q.remove(pos);
            }
        }
    }

    /// Note a read landing in chunk `c`, keeping the residency window
    /// honest even for consumers that never call the hint methods —
    /// e.g. the conjugate-gradient solver's full-dataset HVP scans,
    /// which stream every row once per iteration. Without this, one CG
    /// pass would fault the whole file resident and an out-of-core run
    /// would peak at the in-memory footprint. Reads are never blocked:
    /// an evicted chunk simply refaults from the page cache.
    #[inline]
    fn note_chunk_access(&self, c: usize) {
        use std::sync::atomic::Ordering::Relaxed;
        if self.residency_chunks == 0 || self.last_touched.load(Relaxed) == c {
            return;
        }
        self.last_touched.store(c, Relaxed);
        self.touch_chunks(std::iter::once(c));
    }

    /// Deduplicated chunk indices touched by `rows`.
    fn chunks_of_rows(&self, rows: &[usize]) -> Vec<usize> {
        let mut cs: Vec<usize> = rows.iter().map(|&i| self.chunk_of(i)).collect();
        cs.sort_unstable();
        cs.dedup();
        cs
    }
}

impl DatasetStore for MmapStore {
    fn len(&self) -> usize {
        self.manifest.n
    }

    fn dim(&self) -> usize {
        self.manifest.dim
    }

    fn num_classes(&self) -> usize {
        self.manifest.num_classes
    }

    fn feature(&self, i: usize) -> &[f64] {
        assert!(i < self.manifest.n, "row {i} out of bounds");
        let c = self.chunk_of(i);
        self.note_chunk_access(c);
        let r = i - c * self.manifest.chunk_rows;
        let d = self.manifest.dim;
        &self.chunk_floats(c)[r * d..(r + 1) * d]
    }

    fn feature_rows(&self, lo: usize, hi: usize) -> &[f64] {
        assert!(
            lo <= hi && hi <= self.manifest.n,
            "bad row range {lo}..{hi}"
        );
        assert!(
            hi <= self.contiguous_limit(lo),
            "feature_rows({lo}, {hi}) crosses a shard boundary; \
             callers must respect contiguous_limit"
        );
        let c = self.chunk_of(lo);
        self.note_chunk_access(c);
        let r = lo - c * self.manifest.chunk_rows;
        let d = self.manifest.dim;
        &self.chunk_floats(c)[r * d..(r + (hi - lo)) * d]
    }

    fn contiguous_limit(&self, lo: usize) -> usize {
        ((self.chunk_of(lo) + 1) * self.manifest.chunk_rows).min(self.manifest.n)
    }

    fn shard_boundaries(&self) -> Vec<usize> {
        (0..=self.data.len())
            .map(|c| (c * self.manifest.chunk_rows).min(self.manifest.n))
            .collect()
    }

    fn label(&self, i: usize) -> &SoftLabel {
        &self.labels[i]
    }

    fn is_clean(&self, i: usize) -> bool {
        self.clean[i]
    }

    fn ground_truth(&self, i: usize) -> Option<usize> {
        self.truth[i]
    }

    fn clean_label(&mut self, i: usize, label: SoftLabel) {
        assert_eq!(label.num_classes(), self.manifest.num_classes);
        self.labels[i] = label;
        self.clean[i] = true;
    }

    fn set_label(&mut self, i: usize, label: SoftLabel) {
        assert_eq!(label.num_classes(), self.manifest.num_classes);
        self.labels[i] = label;
    }

    fn mark_uncleaned(&mut self, i: usize) {
        self.clean[i] = false;
    }

    fn prefetch_rows(&self, rows: &[usize]) {
        self.touch_chunks(self.chunks_of_rows(rows).into_iter());
    }

    fn advise_range(&self, lo: usize, hi: usize) {
        if lo >= hi {
            return;
        }
        self.touch_chunks(self.chunk_of(lo)..=self.chunk_of(hi - 1));
    }

    fn advise_scanned(&self, lo: usize, hi: usize) {
        if lo >= hi {
            return;
        }
        self.release_chunks(self.chunk_of(lo)..=self.chunk_of(hi - 1));
    }
}

fn load_chunk(file: &File, size: u64) -> io::Result<Vec<f64>> {
    let mut bytes = vec![0u8; size as usize];
    memmap::read_exact_at(file, &mut bytes, 0)?;
    Ok(bytes
        .chunks_exact(8)
        .map(|b| f64::from_le_bytes(b.try_into().unwrap()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_linalg::Matrix;
    use chef_model::Dataset;

    fn tmp_dir(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("chef-store-{}-{name}", std::process::id()))
    }

    fn fixture(n: usize, d: usize) -> Dataset {
        let mut raw = Vec::with_capacity(n * d);
        let mut labels = Vec::with_capacity(n);
        let mut clean = Vec::with_capacity(n);
        let mut truth = Vec::with_capacity(n);
        for i in 0..n {
            for j in 0..d {
                raw.push((i * d + j) as f64 * 0.25 - 3.0);
            }
            let p = (i % 10) as f64 / 10.0;
            labels.push(SoftLabel::new(vec![p, 1.0 - p]));
            clean.push(i % 3 == 0);
            truth.push(if i % 7 == 0 { None } else { Some(i % 2) });
        }
        Dataset::new(Matrix::from_vec(n, d, raw), labels, clean, truth, 2)
    }

    fn assert_same(a: &dyn DatasetStore, b: &dyn DatasetStore) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.dim(), b.dim());
        assert_eq!(a.num_classes(), b.num_classes());
        for i in 0..a.len() {
            assert_eq!(a.feature(i), b.feature(i), "row {i}");
            assert_eq!(a.label(i).probs(), b.label(i).probs(), "label {i}");
            assert_eq!(a.is_clean(i), b.is_clean(i), "clean {i}");
            assert_eq!(a.ground_truth(i), b.ground_truth(i), "truth {i}");
        }
    }

    #[test]
    fn round_trip_preserves_every_row_bit_for_bit() {
        let dir = tmp_dir("roundtrip");
        let data = fixture(37, 5);
        let manifest = write_store(&data, &dir, 8).unwrap();
        assert_eq!(manifest.chunks.len(), 5); // 4 full shards + 5 rows
        assert_eq!(manifest.chunks[4].rows, 5);
        let store = MmapStore::open(&dir).unwrap();
        assert_same(&data, &store);
        // Shard geometry.
        assert_eq!(store.shard_boundaries(), vec![0, 8, 16, 24, 32, 37]);
        assert_eq!(store.contiguous_limit(0), 8);
        assert_eq!(store.contiguous_limit(33), 37);
        // Zero-copy block reads within a shard match the dense matrix.
        assert_eq!(store.feature_rows(8, 16), data.feature_rows(8, 16));
        assert_eq!(store.feature_rows(32, 37), data.feature_rows(32, 37));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pread_fallback_is_equivalent() {
        let dir = tmp_dir("pread");
        let data = fixture(20, 3);
        write_store(&data, &dir, 6).unwrap();
        let store = MmapStore::open_with(
            &dir,
            StoreOptions {
                force_pread: true,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        assert_same(&data, &store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn to_dataset_materializes_the_same_data() {
        let dir = tmp_dir("todataset");
        let data = fixture(25, 4);
        write_store(&data, &dir, 10).unwrap();
        let store = MmapStore::open(&dir).unwrap();
        let back = store.to_dataset();
        assert_same(&data, &back);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn label_mutations_update_ram_state() {
        let dir = tmp_dir("mutate");
        write_store(&fixture(12, 2), &dir, 4).unwrap();
        let mut store = MmapStore::open(&dir).unwrap();
        let before_uncleaned = store.uncleaned_indices();
        store.clean_label(1, SoftLabel::onehot(0, 2));
        assert!(store.is_clean(1));
        assert_eq!(store.label(1).probs(), &[1.0, 0.0]);
        assert_eq!(store.uncleaned_indices().len(), before_uncleaned.len() - 1);
        store.mark_uncleaned(1);
        assert!(!store.is_clean(1));
        store.set_label(2, SoftLabel::new(vec![0.4, 0.6]));
        assert!(!store.is_clean(2) || store.is_clean(2)); // set_label leaves the flag
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn residency_hints_do_not_change_data() {
        let dir = tmp_dir("hints");
        let data = fixture(40, 3);
        write_store(&data, &dir, 8).unwrap();
        let store = MmapStore::open_with(
            &dir,
            StoreOptions {
                residency_chunks: 2, // force eviction
                ..StoreOptions::default()
            },
        )
        .unwrap();
        store.prefetch_rows(&[0, 9, 17, 25, 33]);
        store.advise_range(0, 40);
        for i in 0..40 {
            assert_eq!(store.feature(i), data.feature(i));
        }
        store.advise_scanned(0, 40);
        assert_eq!(store.feature(39), data.feature(39)); // still readable
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_version_is_rejected() {
        let dir = tmp_dir("version");
        write_store(&fixture(5, 2), &dir, 4).unwrap();
        let path = dir.join(MANIFEST_FILE);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replacen("chef-store.v1", "chef-store.v2", 1)).unwrap();
        match MmapStore::open(&dir) {
            Err(StoreError::Version(v)) => assert_eq!(v, "chef-store.v2"),
            other => panic!("expected version error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_shard_truncation_is_rejected() {
        let dir = tmp_dir("torn-size");
        write_store(&fixture(10, 2), &dir, 4).unwrap();
        let chunk = dir.join(chunk_file_name(1));
        let bytes = fs::read(&chunk).unwrap();
        fs::write(&chunk, &bytes[..bytes.len() - 8]).unwrap();
        match MmapStore::open(&dir) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("torn shard"), "{msg}"),
            other => panic!("expected corrupt error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_shard_bitflip_is_rejected_by_checksum() {
        let dir = tmp_dir("torn-flip");
        write_store(&fixture(10, 2), &dir, 4).unwrap();
        let chunk = dir.join(chunk_file_name(0));
        let mut bytes = fs::read(&chunk).unwrap();
        bytes[3] ^= 0x40; // same size, different contents
        fs::write(&chunk, &bytes).unwrap();
        match MmapStore::open(&dir) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected checksum error, got {other:?}"),
        }
        // With verification off the torn shard goes undetected — which
        // is exactly why `verify` defaults to on.
        assert!(MmapStore::open_with(
            &dir,
            StoreOptions {
                verify: false,
                ..StoreOptions::default()
            }
        )
        .is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_an_io_error() {
        let dir = tmp_dir("missing");
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(MmapStore::open(&dir), Err(StoreError::Io(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_renders_and_parses_losslessly() {
        let dir = tmp_dir("manifest");
        let m = write_store(&fixture(17, 3), &dir, 5).unwrap();
        let parsed = Manifest::parse(&m.render()).unwrap();
        assert_eq!(parsed, m);
        fs::remove_dir_all(&dir).unwrap();
    }
}
