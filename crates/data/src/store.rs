//! Out-of-core sharded dataset store (`store.v1`).
//!
//! The in-memory [`Dataset`](chef_model::Dataset) keeps the whole
//! `n × d` feature matrix in
//! one heap allocation, which caps the reachable scale at available
//! RAM. This module stores the same data as a **directory of
//! fixed-width row-major shards** plus a small manifest, and serves it
//! back through the [`DatasetStore`] trait with features left on disk:
//!
//! ```text
//! store-dir/
//!   store.v1           versioned manifest: dims, chunk size, checksums
//!   chunk-00000.bin    rows 0..chunk_rows, raw f64 LE, row-major
//!   chunk-00001.bin    rows chunk_rows..2*chunk_rows
//!   ...
//!   labels.bin         soft labels + clean flags + ground truth
//! ```
//!
//! * [`StoreWriter`] builds a store **streaming**, one row at a time,
//!   holding only the current chunk (a few MB) plus the label columns
//!   in memory — so a store larger than RAM can be written.
//! * [`MmapStore`] opens a store read-only. Feature chunks are
//!   memory-mapped (`MAP_SHARED`, via the offline `memmap` shim) so the
//!   kernel's page cache owns residency; the [`DatasetStore`] hint
//!   methods translate to `madvise` and a bounded window of
//!   recently-hinted chunks is kept resident (older chunks are released
//!   with `MADV_DONTNEED`). When `mmap` itself is unavailable the store
//!   falls back to positional reads (`pread`) that load chunks into
//!   owned buffers — a correctness fallback, not memory-bounded.
//! * Labels, clean flags and ground truth are deliberately
//!   **RAM-resident** (they are O(n), not O(n·d), and the cleaning loop
//!   mutates them every round). Label mutations are in-memory only:
//!   durability across crashes belongs to the `checkpoint.v1` subsystem,
//!   which re-applies its label patches to a freshly opened store on
//!   resume.
//!
//! Integrity: the manifest records an FNV-1a-64 checksum and byte size
//! per shard (and for `labels.bin`); `store.v2` manifests additionally
//! carry a **per-block checksum table** (fixed block size, default
//! 1 MiB) so verification can be block-granular, plus a `labels_fnv64`
//! line. The v2-only checksums fold FNV over 64-bit words instead of
//! bytes — the byte-serial chain alone would floor a lazy cold open —
//! while the v1 fields stay byte-wise so old directories (and v2
//! manifests demoted to v1) still verify. [`MmapStore::open`]
//! rejects an unknown manifest version and detects torn shards before
//! serving any data. *When* shards are verified is governed by
//! [`IntegrityMode`]:
//!
//! * [`Eager`](IntegrityMode::Eager) — stream every shard checksum at
//!   open through a pooled `pread` buffer (never inflates the resident
//!   set). O(dataset bytes) before the first row is served.
//! * [`LazyFirstTouch`](IntegrityMode::LazyFirstTouch) — defer to the
//!   access path: each block is verified exactly once, on first touch
//!   (`feature` / `feature_rows` / `prefetch_rows`), tracked by a
//!   per-shard atomic bitmap. Cold-open cost becomes O(touched bytes),
//!   which is what makes the first scored block arrive fast at n=10M.
//!   Corruption discovered on the access path poisons the store and
//!   panics with the [`StoreError::Corrupt`] rendering; the fallible
//!   twins [`MmapStore::verify_rows`] / [`MmapStore::verify_all`]
//!   surface the error value itself.
//! * [`Off`](IntegrityMode::Off) — sizes checked, checksums skipped.
//!
//! On top of lazy verification sits an optional **background prefetch
//! pipeline** (`parallel` feature): a single worker thread that
//! verifies-and-warms the next residency window (`madvise(WILLNEED)`)
//! while the selector scores the current one. The worker mutates no
//! visible data — it only flips verification bits (idempotent) and
//! issues advisory hints — so scored results are bit-identical with the
//! prefetcher on or off, serial or parallel. See DESIGN.md §15.

use chef_model::{DatasetStore, SoftLabel, StoreIoStats};
use memmap::Mmap;
use std::collections::VecDeque;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Version line of first-generation manifests (whole-shard checksums).
pub const STORE_VERSION: &str = "chef-store.v1";
/// Version line of second-generation manifests (per-block checksums).
pub const STORE_VERSION_V2: &str = "chef-store.v2";
/// First-generation manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "store.v1";
/// Second-generation manifest file name inside a store directory.
/// [`Manifest::read`] looks for this first and falls back to
/// [`MANIFEST_FILE`], so v1 directories stay readable.
pub const MANIFEST_FILE_V2: &str = "store.v2";
/// Label sidecar file name inside a store directory.
pub const LABELS_FILE: &str = "labels.bin";
/// Default verification block size written by [`StoreWriter`]: large
/// enough that the checksum table stays tiny (16 B of hex per MiB of
/// data), small enough that first-touch verification of one scored
/// window costs milliseconds, not seconds.
pub const DEFAULT_BLOCK_BYTES: usize = 1 << 20;

/// File name of shard `idx` (`chunk-00000.bin`, `chunk-00001.bin`, …).
pub fn chunk_file_name(idx: usize) -> String {
    format!("chunk-{idx:05}.bin")
}

// FNV-1a 64-bit, streaming form. chef-core's checkpoint module has the
// same function, but chef-core depends on chef-data (not vice versa),
// so the store keeps its own copy rather than inverting the crate DAG.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// FNV-1a folded over 64-bit little-endian words (trailing bytes
/// byte-wise). The byte-at-a-time form above is a strictly serial
/// xor→multiply chain (~4 cycles *per byte*), which puts a hard floor
/// under every verification on the open/first-touch path; folding a
/// word per step cuts the chain 8×. All checksums that `store.v2`
/// introduces (the per-block table, the v2 labels hash) use this form;
/// the whole-shard and v1 labels checksums keep the byte-wise form so
/// v1 directories still verify.
fn fnv1a64_words(mut state: u64, bytes: &[u8]) -> u64 {
    let mut words = bytes.chunks_exact(8);
    for w in &mut words {
        state ^= u64::from_le_bytes(w.try_into().unwrap());
        state = state.wrapping_mul(FNV_PRIME);
    }
    fnv1a64(state, words.remainder())
}

/// Errors opening or validating a `store.v1` directory.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The manifest's version line is not [`STORE_VERSION`].
    Version(String),
    /// The manifest is syntactically malformed.
    Format(String),
    /// A shard or sidecar failed integrity checks (torn write).
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Version(v) => {
                write!(
                    f,
                    "unknown store version {v:?} (expected {STORE_VERSION:?} or {STORE_VERSION_V2:?})"
                )
            }
            StoreError::Format(m) => write!(f, "malformed store manifest: {m}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Per-shard record in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Number of rows stored in this shard.
    pub rows: usize,
    /// Exact byte size of the shard file (`rows × dim × 8`).
    pub bytes: u64,
    /// FNV-1a-64 checksum of the shard file's contents.
    pub fnv: u64,
    /// Per-block FNV-1a-64 checksums (`store.v2` only; empty for v1).
    /// Block `b` covers bytes `[b·block_bytes, (b+1)·block_bytes)` of
    /// the shard, with the last block possibly short.
    pub blocks: Vec<u64>,
}

/// Parsed store manifest (either generation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Manifest generation: `1` for `store.v1`, `2` for `store.v2`.
    pub version: u32,
    /// Total number of samples across all shards.
    pub n: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Rows per shard (every shard but the last holds exactly this many).
    pub chunk_rows: usize,
    /// Verification block size in bytes (`store.v2` only; `0` for v1,
    /// meaning "the whole shard is one block").
    pub block_bytes: usize,
    /// Byte size of `labels.bin`.
    pub labels_bytes: u64,
    /// Byte-wise FNV-1a-64 checksum of `labels.bin`. Present in both
    /// dialects, so a v2 manifest demoted to v1 stays verifiable.
    pub labels_fnv: u64,
    /// Word-folded FNV-1a-64 of `labels.bin` (`store.v2` only; `0` for
    /// v1). v2 opens verify this one — the byte-serial chain costs ~4
    /// cycles/byte, which is most of a lazy cold open at n=1M.
    pub labels_fnv_words: u64,
    /// Shard records, in shard order.
    pub chunks: Vec<ChunkMeta>,
}

impl Manifest {
    /// Render the manifest in its on-disk line format. A `version: 1`
    /// manifest renders byte-identically to what pre-v2 code wrote.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(if self.version >= 2 {
            STORE_VERSION_V2
        } else {
            STORE_VERSION
        });
        out.push('\n');
        out.push_str(&format!("n={}\n", self.n));
        out.push_str(&format!("dim={}\n", self.dim));
        out.push_str(&format!("num_classes={}\n", self.num_classes));
        out.push_str(&format!("chunk_rows={}\n", self.chunk_rows));
        if self.version >= 2 {
            out.push_str(&format!("block_bytes={}\n", self.block_bytes));
        }
        out.push_str(&format!(
            "labels bytes={} fnv={:016x}\n",
            self.labels_bytes, self.labels_fnv
        ));
        if self.version >= 2 {
            out.push_str(&format!("labels_fnv64={:016x}\n", self.labels_fnv_words));
        }
        out.push_str(&format!("chunks={}\n", self.chunks.len()));
        for (i, c) in self.chunks.iter().enumerate() {
            out.push_str(&format!(
                "chunk={i} rows={} bytes={} fnv={:016x}\n",
                c.rows, c.bytes, c.fnv
            ));
            if self.version >= 2 {
                out.push_str(&format!("blocks={i}"));
                for b in &c.blocks {
                    out.push_str(&format!(" {b:016x}"));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Verification block size effective for shard `c`: the manifest's
    /// `block_bytes` under v2, the whole shard under v1.
    pub fn effective_block_bytes(&self, c: usize) -> usize {
        if self.version >= 2 && self.block_bytes > 0 {
            self.block_bytes
        } else {
            self.chunks[c].bytes as usize
        }
    }

    /// Number of verification blocks in shard `c` (at least 1).
    pub fn num_blocks(&self, c: usize) -> usize {
        let bytes = self.chunks[c].bytes as usize;
        bytes.div_ceil(self.effective_block_bytes(c).max(1)).max(1)
    }

    /// Expected checksum of block `b` of shard `c` (the whole-shard
    /// checksum under v1, where each shard is a single block).
    pub fn block_fnv(&self, c: usize, b: usize) -> u64 {
        if self.version >= 2 {
            self.chunks[c].blocks[b]
        } else {
            self.chunks[c].fnv
        }
    }

    /// Parse a manifest from its on-disk text, rejecting unknown
    /// versions before looking at anything else.
    pub fn parse(text: &str) -> Result<Manifest, StoreError> {
        let mut lines = text.lines();
        let version_line = lines.next().unwrap_or("").trim();
        let version: u32 = if version_line == STORE_VERSION {
            1
        } else if version_line == STORE_VERSION_V2 {
            2
        } else {
            return Err(StoreError::Version(version_line.to_string()));
        };
        fn kv<'a>(line: Option<&'a str>, key: &str) -> Result<&'a str, StoreError> {
            let line = line.ok_or_else(|| StoreError::Format(format!("missing {key} line")))?;
            line.trim()
                .strip_prefix(key)
                .and_then(|rest| rest.strip_prefix('='))
                .ok_or_else(|| StoreError::Format(format!("expected `{key}=...`, got {line:?}")))
        }
        fn num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, StoreError> {
            s.parse()
                .map_err(|_| StoreError::Format(format!("bad {what}: {s:?}")))
        }
        let n: usize = num(kv(lines.next(), "n")?, "n")?;
        let dim: usize = num(kv(lines.next(), "dim")?, "dim")?;
        let num_classes: usize = num(kv(lines.next(), "num_classes")?, "num_classes")?;
        let chunk_rows: usize = num(kv(lines.next(), "chunk_rows")?, "chunk_rows")?;
        if dim == 0 || num_classes == 0 || chunk_rows == 0 {
            return Err(StoreError::Format(
                "dim, num_classes and chunk_rows must be positive".into(),
            ));
        }
        let block_bytes: usize = if version >= 2 {
            let bb = num(kv(lines.next(), "block_bytes")?, "block_bytes")?;
            if bb == 0 {
                return Err(StoreError::Format("block_bytes must be positive".into()));
            }
            bb
        } else {
            0
        };
        let labels_line = lines
            .next()
            .ok_or_else(|| StoreError::Format("missing labels line".into()))?;
        let (labels_bytes, labels_fnv) = parse_sized_entry(labels_line, "labels")?;
        let labels_fnv_words: u64 = if version >= 2 {
            let v = kv(lines.next(), "labels_fnv64")?;
            u64::from_str_radix(v, 16)
                .map_err(|_| StoreError::Format(format!("bad labels_fnv64 {v:?}")))?
        } else {
            0
        };
        let num_chunks: usize = num(kv(lines.next(), "chunks")?, "chunks")?;
        let mut chunks = Vec::with_capacity(num_chunks);
        for i in 0..num_chunks {
            let line = lines
                .next()
                .ok_or_else(|| StoreError::Format(format!("missing chunk {i} line")))?;
            let rest = line
                .trim()
                .strip_prefix(&format!("chunk={i} rows="))
                .ok_or_else(|| StoreError::Format(format!("bad chunk line {line:?}")))?;
            let (rows_s, tail) = rest
                .split_once(' ')
                .ok_or_else(|| StoreError::Format(format!("bad chunk line {line:?}")))?;
            let rows: usize = num(rows_s, "chunk rows")?;
            let (bytes, fnv) = parse_sized_entry(&format!("x {tail}"), "x")?;
            let blocks = if version >= 2 {
                let line = lines
                    .next()
                    .ok_or_else(|| StoreError::Format(format!("missing blocks {i} line")))?;
                let rest = line
                    .trim()
                    .strip_prefix(&format!("blocks={i}"))
                    .ok_or_else(|| StoreError::Format(format!("bad blocks line {line:?}")))?;
                let fnvs: Result<Vec<u64>, StoreError> = rest
                    .split_whitespace()
                    .map(|s| {
                        u64::from_str_radix(s, 16)
                            .map_err(|_| StoreError::Format(format!("bad block fnv {s:?}")))
                    })
                    .collect();
                let fnvs = fnvs?;
                let expect = (bytes as usize).div_ceil(block_bytes).max(1);
                if fnvs.len() != expect {
                    return Err(StoreError::Format(format!(
                        "chunk {i} lists {} block checksums, expected {expect}",
                        fnvs.len()
                    )));
                }
                fnvs
            } else {
                Vec::new()
            };
            chunks.push(ChunkMeta {
                rows,
                bytes,
                fnv,
                blocks,
            });
        }
        let total: usize = chunks.iter().map(|c| c.rows).sum();
        if total != n {
            return Err(StoreError::Format(format!(
                "chunk rows sum to {total}, manifest says n={n}"
            )));
        }
        for (i, c) in chunks.iter().enumerate() {
            let expect_rows = if i + 1 < chunks.len() {
                chunk_rows
            } else {
                c.rows // last shard may be short
            };
            if c.rows != expect_rows || c.rows == 0 || c.rows > chunk_rows {
                return Err(StoreError::Format(format!(
                    "chunk {i} holds {} rows (chunk_rows={chunk_rows})",
                    c.rows
                )));
            }
            if c.bytes != (c.rows * dim * 8) as u64 {
                return Err(StoreError::Format(format!(
                    "chunk {i} byte size {} does not match rows×dim×8",
                    c.bytes
                )));
            }
        }
        Ok(Manifest {
            version,
            n,
            dim,
            num_classes,
            chunk_rows,
            block_bytes,
            labels_bytes,
            labels_fnv,
            labels_fnv_words,
            chunks,
        })
    }

    /// Read and parse the manifest inside `dir`: `store.v2` if present,
    /// otherwise the legacy `store.v1` (backward-compat open).
    pub fn read(dir: &Path) -> Result<Manifest, StoreError> {
        match fs::read_to_string(dir.join(MANIFEST_FILE_V2)) {
            Ok(text) => Manifest::parse(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                let text = fs::read_to_string(dir.join(MANIFEST_FILE))?;
                Manifest::parse(&text)
            }
            Err(e) => Err(e.into()),
        }
    }
}

/// Parse a `<name> bytes=<u64> fnv=<hex16>` manifest line.
fn parse_sized_entry(line: &str, name: &str) -> Result<(u64, u64), StoreError> {
    let parts: Vec<&str> = line.trim().split(' ').collect();
    let bad = || StoreError::Format(format!("bad {name} line {line:?}"));
    if parts.len() != 3 {
        return Err(bad());
    }
    let bytes = parts[1]
        .strip_prefix("bytes=")
        .and_then(|s| s.parse().ok())
        .ok_or_else(bad)?;
    let fnv = parts[2]
        .strip_prefix("fnv=")
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(bad)?;
    Ok((bytes, fnv))
}

/// Streaming store builder: create, [`push_row`](Self::push_row) `n`
/// times, [`finish`](Self::finish). Memory use is one chunk's worth of
/// feature bytes plus the O(n) label columns, independent of how many
/// chunks the finished store holds — which is what lets a
/// larger-than-RAM store be generated row by row.
#[derive(Debug)]
pub struct StoreWriter {
    dir: PathBuf,
    dim: usize,
    num_classes: usize,
    chunk_rows: usize,
    block_bytes: usize,
    buf: Vec<u8>,
    rows_in_chunk: usize,
    chunks: Vec<ChunkMeta>,
    labels: Vec<SoftLabel>,
    clean: Vec<bool>,
    truth: Vec<Option<usize>>,
}

impl StoreWriter {
    /// Create (or truncate) a store directory. The writer emits a
    /// `store.v2` manifest with per-block checksums at
    /// [`DEFAULT_BLOCK_BYTES`] granularity; tune with
    /// [`with_block_bytes`](Self::with_block_bytes).
    pub fn create(
        dir: &Path,
        dim: usize,
        num_classes: usize,
        chunk_rows: usize,
    ) -> io::Result<StoreWriter> {
        assert!(dim > 0 && num_classes > 0 && chunk_rows > 0);
        fs::create_dir_all(dir)?;
        Ok(StoreWriter {
            dir: dir.to_path_buf(),
            dim,
            num_classes,
            chunk_rows,
            block_bytes: DEFAULT_BLOCK_BYTES,
            buf: Vec::with_capacity(chunk_rows * dim * 8),
            rows_in_chunk: 0,
            chunks: Vec::new(),
            labels: Vec::new(),
            clean: Vec::new(),
            truth: Vec::new(),
        })
    }

    /// Override the verification block size (bytes). Must be called
    /// before the first chunk flushes; mainly for tests that want many
    /// blocks per shard without writing gigabytes.
    pub fn with_block_bytes(mut self, block_bytes: usize) -> StoreWriter {
        assert!(block_bytes > 0, "block_bytes must be positive");
        assert!(
            self.chunks.is_empty() && self.buf.is_empty(),
            "with_block_bytes must be called before pushing rows"
        );
        self.block_bytes = block_bytes;
        self
    }

    /// Append one sample. Rows land in shards in append order, so row
    /// `i` of the finished store is the `i`-th pushed row.
    pub fn push_row(
        &mut self,
        features: &[f64],
        label: SoftLabel,
        clean: bool,
        truth: Option<usize>,
    ) -> io::Result<()> {
        assert_eq!(features.len(), self.dim, "feature row has wrong width");
        assert_eq!(label.num_classes(), self.num_classes);
        for &x in features {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
        self.labels.push(label);
        self.clean.push(clean);
        self.truth.push(truth);
        self.rows_in_chunk += 1;
        if self.rows_in_chunk == self.chunk_rows {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.rows_in_chunk == 0 {
            return Ok(());
        }
        let path = self.dir.join(chunk_file_name(self.chunks.len()));
        let mut f = File::create(&path)?;
        f.write_all(&self.buf)?;
        f.sync_all()?;
        self.chunks.push(ChunkMeta {
            rows: self.rows_in_chunk,
            bytes: self.buf.len() as u64,
            fnv: fnv1a64(FNV_OFFSET, &self.buf),
            blocks: self
                .buf
                .chunks(self.block_bytes)
                .map(|b| fnv1a64_words(FNV_OFFSET, b))
                .collect(),
        });
        self.buf.clear();
        self.rows_in_chunk = 0;
        Ok(())
    }

    /// Flush the final (possibly short) shard, write `labels.bin` and
    /// the manifest. The manifest is written last so a crash mid-write
    /// leaves a directory that [`MmapStore::open`] refuses to serve.
    pub fn finish(mut self) -> io::Result<Manifest> {
        self.flush_chunk()?;
        let labels_buf = encode_labels(&self.labels, &self.clean, &self.truth, self.num_classes);
        let labels_path = self.dir.join(LABELS_FILE);
        let mut f = File::create(&labels_path)?;
        f.write_all(&labels_buf)?;
        f.sync_all()?;
        let manifest = Manifest {
            version: 2,
            n: self.labels.len(),
            dim: self.dim,
            num_classes: self.num_classes,
            chunk_rows: self.chunk_rows,
            block_bytes: self.block_bytes,
            labels_bytes: labels_buf.len() as u64,
            labels_fnv: fnv1a64(FNV_OFFSET, &labels_buf),
            labels_fnv_words: fnv1a64_words(FNV_OFFSET, &labels_buf),
            chunks: std::mem::take(&mut self.chunks),
        };
        let mut f = File::create(self.dir.join(MANIFEST_FILE_V2))?;
        f.write_all(manifest.render().as_bytes())?;
        f.sync_all()?;
        Ok(manifest)
    }
}

/// Copy any [`DatasetStore`] into a fresh `store.v1` directory.
pub fn write_store(data: &dyn DatasetStore, dir: &Path, chunk_rows: usize) -> io::Result<Manifest> {
    let mut w = StoreWriter::create(dir, data.dim(), data.num_classes(), chunk_rows)?;
    for i in 0..data.len() {
        w.push_row(
            data.feature(i),
            data.label(i).clone(),
            data.is_clean(i),
            data.ground_truth(i),
        )?;
    }
    w.finish()
}

// labels.bin layout: [n × C f64 LE probs][n × u8 clean][n × i64 LE truth]
// with truth = −1 encoding "no ground truth".
fn encode_labels(
    labels: &[SoftLabel],
    clean: &[bool],
    truth: &[Option<usize>],
    num_classes: usize,
) -> Vec<u8> {
    let n = labels.len();
    let mut buf = Vec::with_capacity(n * num_classes * 8 + n + n * 8);
    for l in labels {
        for &p in l.probs() {
            buf.extend_from_slice(&p.to_le_bytes());
        }
    }
    for &c in clean {
        buf.push(u8::from(c));
    }
    for t in truth {
        let v: i64 = t.map_or(-1, |c| c as i64);
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf
}

/// The RAM-resident label state decoded from `labels.bin`: soft labels,
/// clean flags, and optional ground truth per sample.
type DecodedLabels = (Vec<SoftLabel>, Vec<bool>, Vec<Option<usize>>);

fn decode_labels(buf: &[u8], n: usize, num_classes: usize) -> Result<DecodedLabels, StoreError> {
    let expect = n * num_classes * 8 + n + n * 8;
    if buf.len() != expect {
        return Err(StoreError::Corrupt(format!(
            "labels.bin is {} bytes, expected {expect}",
            buf.len()
        )));
    }
    // This loop is the floor of the lazy cold open (it runs once per
    // sample whatever the integrity mode), so it takes the trusted
    // constructor: the bytes just passed the manifest checksum and were
    // written from validated `SoftLabel`s, and re-validating a million
    // rows costs more than the entire rest of a lazy open.
    let clean_at = n * num_classes * 8;
    let mut labels = Vec::with_capacity(n);
    for row in buf[..clean_at].chunks_exact(num_classes * 8) {
        let probs = row
            .chunks_exact(8)
            .map(|b| f64::from_le_bytes(b.try_into().unwrap()))
            .collect();
        labels.push(SoftLabel::from_verified(probs));
    }
    let clean: Vec<bool> = buf[clean_at..clean_at + n]
        .iter()
        .map(|&b| b != 0)
        .collect();
    let truth = buf[clean_at + n..]
        .chunks_exact(8)
        .map(|b| {
            let v = i64::from_le_bytes(b.try_into().unwrap());
            if v < 0 {
                None
            } else {
                Some(v as usize)
            }
        })
        .collect();
    Ok((labels, clean, truth))
}

/// When shard checksums are verified. File sizes are checked at open
/// regardless of mode, and `labels.bin` (O(n), RAM-resident anyway) is
/// always verified at open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityMode {
    /// Stream every shard checksum at open. Cold-open is O(dataset
    /// bytes); all subsequent reads are free of verification cost.
    Eager,
    /// Verify each block the first time it is touched on the access
    /// path. Cold-open is O(touched bytes); a corrupt block surfaces
    /// the moment something reads it.
    LazyFirstTouch,
    /// Skip checksum verification entirely.
    Off,
}

/// How an [`MmapStore`] opens its shards.
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Maximum number of chunks the residency window keeps hinted
    /// resident at once; older chunks are released with
    /// `MADV_DONTNEED` as new ones are hinted. `0` disables eviction.
    pub residency_chunks: usize,
    /// Skip `mmap` and use the `pread` fallback (loads every chunk
    /// into an owned buffer — correctness fallback, not memory-bounded).
    pub force_pread: bool,
    /// When shard checksums are verified (default: [`IntegrityMode::Eager`],
    /// matching the historical open-time behaviour).
    pub integrity: IntegrityMode,
    /// Spawn the background verify-and-warm prefetch thread serving
    /// [`DatasetStore::prefetch_upcoming`] hints (`parallel` feature
    /// only; ignored — the serial twin is the synchronous access path —
    /// when the feature is off).
    pub background_prefetch: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            residency_chunks: 32,
            force_pread: false,
            integrity: IntegrityMode::Eager,
            background_prefetch: true,
        }
    }
}

#[derive(Debug)]
enum ChunkData {
    Mapped(Mmap),
    Loaded(Vec<f64>),
}

/// A `store.v1` directory opened for the cleaning pipeline: features
/// served from memory-mapped shards, label columns RAM-resident.
///
/// ```
/// use chef_data::store::{MmapStore, StoreWriter};
/// use chef_model::{DatasetStore, SoftLabel};
///
/// let dir = std::env::temp_dir().join(format!("doc-store-{}", std::process::id()));
/// let mut w = StoreWriter::create(&dir, 2, 2, 4).unwrap();
/// for i in 0..10 {
///     let x = [i as f64, -(i as f64)];
///     w.push_row(&x, SoftLabel::onehot(i % 2, 2), false, Some(i % 2)).unwrap();
/// }
/// w.finish().unwrap();
///
/// let store = MmapStore::open(&dir).unwrap();
/// assert_eq!(store.len(), 10);
/// assert_eq!(store.feature(7), &[7.0, -7.0]);
/// assert_eq!(store.contiguous_limit(5), 8); // rows 4..8 share a shard
/// assert_eq!(store.shard_boundaries(), vec![0, 4, 8, 10]);
/// std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug)]
pub struct MmapStore {
    core: Arc<StoreCore>,
    labels: Vec<SoftLabel>,
    clean: Vec<bool>,
    truth: Vec<Option<usize>>,
    #[cfg(feature = "parallel")]
    prefetcher: Option<Prefetcher>,
}

/// The shared, immutable-after-open part of an [`MmapStore`]: shard
/// data, residency tracking, lazy-verification state and I/O counters.
/// Lives behind an `Arc` so the background prefetch thread can hold it
/// without borrowing from the store (label columns stay outside — the
/// cleaning loop mutates them and the prefetcher never needs them).
#[derive(Debug)]
struct StoreCore {
    manifest: Manifest,
    data: Vec<ChunkData>,
    // Queue of chunk indices currently hinted resident, oldest first.
    // A Mutex (not RwLock) because every operation mutates the queue;
    // contention is per-chunk-transition, not per-row.
    resident: Mutex<VecDeque<usize>>,
    // Last chunk this store noted an access to — a lock-free dedup so
    // the per-read residency tracking costs one atomic load on the
    // straight-line path (consecutive reads land in the same chunk).
    last_touched: AtomicUsize,
    residency_chunks: usize,
    // First-touch verification state; `None` under Eager (already
    // verified at open) and Off (verification disabled), so the
    // access-path check is a single Option discriminant load.
    verify: Option<LazyVerify>,
    // Once a corrupt block is seen the whole store is poisoned: every
    // subsequent verified access fails with the same message, whichever
    // thread (reader or prefetcher) found the corruption first.
    poisoned: AtomicBool,
    poison_msg: Mutex<Option<String>>,
    stats: IoCounters,
}

/// Per-shard atomic bitmaps recording which verification blocks have
/// been checksummed. Bit `b` of `bits[c]` (word `b/64`, bit `b%64`) is
/// set once block `b` of shard `c` verified clean. Relaxed ordering is
/// enough: the worst race is two threads verifying the same block once
/// each — idempotent, and counted honestly by the counters.
#[derive(Debug)]
struct LazyVerify {
    bits: Vec<Vec<AtomicU64>>,
}

/// Monotonic I/O counters behind [`DatasetStore::io_stats`].
#[derive(Debug, Default)]
struct IoCounters {
    verify_ns: AtomicU64,
    blocks_verified: AtomicU64,
    lazy_verify_hits: AtomicU64,
    prefetch_overlap_ns: AtomicU64,
}

impl IoCounters {
    fn snapshot(&self) -> StoreIoStats {
        StoreIoStats {
            verify_ms: self.verify_ns.load(Ordering::Relaxed) / 1_000_000,
            blocks_verified: self.blocks_verified.load(Ordering::Relaxed),
            lazy_verify_hits: self.lazy_verify_hits.load(Ordering::Relaxed),
            prefetch_overlap_ms: self.prefetch_overlap_ns.load(Ordering::Relaxed) / 1_000_000,
        }
    }
}

/// Handle to the background verify-and-warm thread. Requests are
/// coalesced (only the newest window matters); dropping the handle
/// closes the channel and joins the worker.
#[cfg(feature = "parallel")]
#[derive(Debug)]
struct Prefetcher {
    tx: Option<std::sync::mpsc::Sender<(usize, usize)>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

#[cfg(feature = "parallel")]
impl Prefetcher {
    fn spawn(core: Arc<StoreCore>) -> Prefetcher {
        let (tx, rx) = std::sync::mpsc::channel::<(usize, usize)>();
        let handle = std::thread::Builder::new()
            .name("chef-store-prefetch".into())
            .spawn(move || {
                while let Ok(mut win) = rx.recv() {
                    // Coalesce a backlog down to the newest request —
                    // the selector has already moved past older windows.
                    while let Ok(next) = rx.try_recv() {
                        win = next;
                    }
                    let t0 = Instant::now();
                    let hi = win.1.min(core.data.len());
                    for c in win.0..hi {
                        if core.poisoned.load(Ordering::Acquire) {
                            break;
                        }
                        // Verify-and-warm. A corrupt block poisons the
                        // core (inside verify_block); the next verified
                        // access on the scoring thread surfaces it.
                        if core.verify_chunk(c).is_err() {
                            break;
                        }
                        if let ChunkData::Mapped(m) = &core.data[c] {
                            m.advise_willneed(0, m.len());
                        }
                    }
                    core.stats
                        .prefetch_overlap_ns
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
            })
            .expect("failed to spawn chef-store-prefetch thread");
        Prefetcher {
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    fn request(&self, chunk_lo: usize, chunk_hi: usize) {
        if let Some(tx) = &self.tx {
            // A send error means the worker already exited (poisoned
            // store); the hint is best-effort either way.
            let _ = tx.send((chunk_lo, chunk_hi));
        }
    }
}

#[cfg(feature = "parallel")]
impl Drop for Prefetcher {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl MmapStore {
    /// Open `dir` with default [`StoreOptions`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Version`] for an unknown manifest version,
    /// [`StoreError::Corrupt`] for torn shards (size or checksum
    /// mismatch), [`StoreError::Format`]/[`StoreError::Io`] otherwise.
    pub fn open(dir: &Path) -> Result<MmapStore, StoreError> {
        MmapStore::open_with(dir, StoreOptions::default())
    }

    /// Open `dir` with explicit options.
    pub fn open_with(dir: &Path, opts: StoreOptions) -> Result<MmapStore, StoreError> {
        let manifest = Manifest::read(dir)?;
        let lazy = opts.integrity == IntegrityMode::LazyFirstTouch;

        // One pooled scratch buffer serves every streamed checksum this
        // open performs (under Eager, all shards).
        let mut scratch = vec![0u8; 1 << 20];
        let mut open_verify_ns = 0u64;
        let mut open_blocks = 0u64;

        // Label sidecar: small (O(n)) and RAM-resident by design, so it
        // is verified in every integrity mode — cleaning decisions never
        // run on unverified labels. Unlike the shards it is about to be
        // decoded into RAM anyway, so read it once and hash the buffer
        // in memory rather than paying a streamed-verify pass plus a
        // read pass; the transient buffer is the same O(n·C) the decoded
        // labels occupy. This is the floor of the lazy cold open.
        let labels_path = dir.join(LABELS_FILE);
        let labels_buf = fs::read(&labels_path)?;
        let t0 = Instant::now();
        let labels_ok = labels_buf.len() as u64 == manifest.labels_bytes
            && if manifest.version >= 2 {
                fnv1a64_words(FNV_OFFSET, &labels_buf) == manifest.labels_fnv_words
            } else {
                fnv1a64(FNV_OFFSET, &labels_buf) == manifest.labels_fnv
            };
        open_verify_ns += t0.elapsed().as_nanos() as u64;
        if !labels_ok {
            return Err(StoreError::Corrupt(
                "labels.bin size/checksum mismatch".into(),
            ));
        }
        let (labels, clean, truth) = decode_labels(&labels_buf, manifest.n, manifest.num_classes)?;
        drop(labels_buf);

        let mut data = Vec::with_capacity(manifest.chunks.len());
        let mut verify_bits: Vec<Vec<AtomicU64>> = Vec::new();
        for (i, meta) in manifest.chunks.iter().enumerate() {
            let path = dir.join(chunk_file_name(i));
            let file = File::open(&path)?;
            let size = file.metadata()?.len();
            if size != meta.bytes {
                return Err(StoreError::Corrupt(format!(
                    "torn shard {}: {size} bytes on disk, manifest says {}",
                    chunk_file_name(i),
                    meta.bytes
                )));
            }
            if opts.integrity == IntegrityMode::Eager {
                // Stream the checksum through pread with the pooled
                // buffer: the pages go through the page cache, not this
                // process's resident set, so opening a 1M-row store does
                // not cost 1M rows of RSS.
                let t0 = Instant::now();
                let state = streamed_file_fnv(&file, size, &mut scratch)?;
                open_verify_ns += t0.elapsed().as_nanos() as u64;
                open_blocks += 1; // whole-shard units under Eager
                if state != meta.fnv {
                    return Err(StoreError::Corrupt(format!(
                        "torn shard {}: checksum mismatch",
                        chunk_file_name(i)
                    )));
                }
            }
            let mapped = if opts.force_pread {
                None
            } else {
                match Mmap::map(&file) {
                    Ok(map)
                        if (map.as_ptr() as usize).is_multiple_of(std::mem::align_of::<f64>()) =>
                    {
                        Some(map)
                    }
                    // mmap unavailable (or, theoretically, misaligned):
                    // fall back to loading this chunk via pread.
                    _ => None,
                }
            };
            let chunk = match mapped {
                Some(map) => ChunkData::Mapped(map),
                None => {
                    let bytes = read_file_bytes(&file, size)?;
                    if lazy {
                        // The loaded fallback materializes the whole
                        // shard now anyway, so verify it in full here;
                        // its lazy bitmap is born all-set below.
                        let t0 = Instant::now();
                        let ok = fnv1a64(FNV_OFFSET, &bytes) == meta.fnv;
                        open_verify_ns += t0.elapsed().as_nanos() as u64;
                        open_blocks += manifest.num_blocks(i) as u64;
                        if !ok {
                            return Err(StoreError::Corrupt(format!(
                                "torn shard {}: checksum mismatch",
                                chunk_file_name(i)
                            )));
                        }
                    }
                    ChunkData::Loaded(bytes_to_floats(&bytes))
                }
            };
            if lazy {
                let nb = manifest.num_blocks(i);
                let words = nb.div_ceil(64);
                let init = match &chunk {
                    ChunkData::Mapped(_) => 0u64,
                    ChunkData::Loaded(_) => !0u64, // verified at load
                };
                verify_bits.push((0..words).map(|_| AtomicU64::new(init)).collect());
            }
            data.push(chunk);
        }

        let stats = IoCounters::default();
        stats.verify_ns.store(open_verify_ns, Ordering::Relaxed);
        stats.blocks_verified.store(open_blocks, Ordering::Relaxed);
        let core = Arc::new(StoreCore {
            manifest,
            data,
            resident: Mutex::new(VecDeque::new()),
            last_touched: AtomicUsize::new(usize::MAX),
            residency_chunks: opts.residency_chunks,
            verify: lazy.then_some(LazyVerify { bits: verify_bits }),
            poisoned: AtomicBool::new(false),
            poison_msg: Mutex::new(None),
            stats,
        });
        #[cfg(feature = "parallel")]
        let prefetcher = opts
            .background_prefetch
            .then(|| Prefetcher::spawn(Arc::clone(&core)));
        #[cfg(not(feature = "parallel"))]
        let _ = opts.background_prefetch;
        Ok(MmapStore {
            core,
            labels,
            clean,
            truth,
            #[cfg(feature = "parallel")]
            prefetcher,
        })
    }

    /// The parsed manifest this store was opened from.
    pub fn manifest(&self) -> &Manifest {
        &self.core.manifest
    }

    /// Verify (first-touch) every not-yet-verified block covering rows
    /// `lo..hi`, returning the corruption instead of panicking. A no-op
    /// under [`IntegrityMode::Eager`] / [`IntegrityMode::Off`].
    pub fn verify_rows(&self, lo: usize, hi: usize) -> Result<(), StoreError> {
        assert!(
            lo <= hi && hi <= self.core.manifest.n,
            "bad row range {lo}..{hi}"
        );
        if lo == hi {
            return Ok(());
        }
        let d8 = self.core.manifest.dim * 8;
        let rows_per = self.core.manifest.chunk_rows;
        for c in self.core.chunk_of(lo)..=self.core.chunk_of(hi - 1) {
            let c_lo = lo.max(c * rows_per) - c * rows_per;
            let c_hi = hi.min((c + 1) * rows_per) - c * rows_per;
            self.core.ensure_bytes_verified(c, c_lo * d8, c_hi * d8)?;
        }
        Ok(())
    }

    /// Verify every not-yet-verified block in the store (fallible twin
    /// of an eager open, usable after a lazy one).
    pub fn verify_all(&self) -> Result<(), StoreError> {
        for c in 0..self.core.data.len() {
            self.core.verify_chunk(c)?;
        }
        Ok(())
    }
}

impl StoreCore {
    /// The `&[f64]` view of shard `c`.
    fn chunk_floats(&self, c: usize) -> &[f64] {
        match &self.data[c] {
            // SAFETY: alignment was checked at open (mmap is page-
            // aligned), the length is a multiple of 8 (size was checked
            // against rows×dim×8), and the mapping lives as long as self.
            ChunkData::Mapped(m) => unsafe {
                std::slice::from_raw_parts(m.as_ptr() as *const f64, m.len() / 8)
            },
            ChunkData::Loaded(v) => v,
        }
    }

    /// Chunk index holding row `i`.
    #[inline]
    fn chunk_of(&self, i: usize) -> usize {
        i / self.manifest.chunk_rows
    }

    /// Record a corrupt-block message and trip the poison flag. The
    /// message is stored before the flag is raised (Release) so any
    /// thread that observes the flag (Acquire) reads the message.
    fn poison(&self, msg: &str) {
        *self.poison_msg.lock().unwrap() = Some(msg.to_string());
        self.poisoned.store(true, Ordering::Release);
    }

    fn poison_check(&self) -> Result<(), StoreError> {
        if self.poisoned.load(Ordering::Acquire) {
            let msg = self
                .poison_msg
                .lock()
                .unwrap()
                .clone()
                .unwrap_or_else(|| "store poisoned by earlier corruption".into());
            return Err(StoreError::Corrupt(msg));
        }
        Ok(())
    }

    /// First-touch verification of every block covering the byte range
    /// `[byte_lo, byte_hi)` of shard `c`. O(1) per already-verified
    /// block (one Relaxed bitmap load); checksums only what a reader is
    /// about to consume otherwise.
    fn ensure_bytes_verified(
        &self,
        c: usize,
        byte_lo: usize,
        byte_hi: usize,
    ) -> Result<(), StoreError> {
        let Some(v) = &self.verify else {
            return Ok(());
        };
        self.poison_check()?;
        if byte_hi <= byte_lo {
            return Ok(());
        }
        let bb = self.manifest.effective_block_bytes(c).max(1);
        let words = &v.bits[c];
        for b in byte_lo / bb..=(byte_hi - 1) / bb {
            if words[b / 64].load(Ordering::Relaxed) & (1u64 << (b % 64)) != 0 {
                self.stats.lazy_verify_hits.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.verify_block(c, b)?;
        }
        Ok(())
    }

    /// Verify every block of shard `c` (bitmap-skipping ones already
    /// done).
    fn verify_chunk(&self, c: usize) -> Result<(), StoreError> {
        self.ensure_bytes_verified(c, 0, self.manifest.chunks[c].bytes as usize)
    }

    /// Checksum one block against the manifest table, set its bitmap
    /// bit on success, poison the store on mismatch.
    fn verify_block(&self, c: usize, b: usize) -> Result<(), StoreError> {
        let v = self.verify.as_ref().expect("verify_block without state");
        let bb = self.manifest.effective_block_bytes(c).max(1);
        let got = match &self.data[c] {
            ChunkData::Mapped(m) => {
                let t0 = Instant::now();
                // v2 block-table entries are word-folded; a v1 manifest
                // has one "block" per shard checked against its
                // byte-wise whole-shard checksum.
                let got = if self.manifest.version >= 2 {
                    fnv1a64_words(FNV_OFFSET, m.byte_range(b * bb, bb))
                } else {
                    fnv1a64(FNV_OFFSET, m.byte_range(b * bb, bb))
                };
                self.stats
                    .verify_ns
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                got
            }
            // Loaded shards are verified in full when materialized at
            // open and their bitmaps born all-set, so this arm is only
            // reachable through a stale bitmap — which cannot happen —
            // but answering "verified" keeps it harmless if it ever did.
            ChunkData::Loaded(_) => return Ok(()),
        };
        if got != self.manifest.block_fnv(c, b) {
            let msg = format!(
                "torn shard {}: block {b} checksum mismatch (first-touch)",
                chunk_file_name(c)
            );
            self.poison(&msg);
            return Err(StoreError::Corrupt(msg));
        }
        self.stats.blocks_verified.fetch_add(1, Ordering::Relaxed);
        v.bits[c][b / 64].fetch_or(1u64 << (b % 64), Ordering::Relaxed);
        Ok(())
    }

    /// Hint the given chunks resident and evict the oldest hinted
    /// chunks beyond the residency budget.
    fn touch_chunks(&self, chunks: impl Iterator<Item = usize>) {
        let mut q = self.resident.lock().unwrap();
        for c in chunks {
            if let ChunkData::Mapped(m) = &self.data[c] {
                m.advise_willneed(0, m.len());
            }
            if let Some(pos) = q.iter().position(|&x| x == c) {
                q.remove(pos); // re-touch: move to the back of the window
            }
            q.push_back(c);
            if self.residency_chunks > 0 {
                while q.len() > self.residency_chunks {
                    let old = q.pop_front().unwrap();
                    if let ChunkData::Mapped(m) = &self.data[old] {
                        m.advise_dontneed(0, m.len());
                    }
                }
            }
        }
    }

    /// Release the given chunks (and forget them from the window).
    fn release_chunks(&self, chunks: impl Iterator<Item = usize>) {
        let mut q = self.resident.lock().unwrap();
        for c in chunks {
            if let ChunkData::Mapped(m) = &self.data[c] {
                m.advise_dontneed(0, m.len());
            }
            if let Some(pos) = q.iter().position(|&x| x == c) {
                q.remove(pos);
            }
        }
    }

    /// Note a read landing in chunk `c`, keeping the residency window
    /// honest even for consumers that never call the hint methods —
    /// e.g. the conjugate-gradient solver's full-dataset HVP scans,
    /// which stream every row once per iteration. Without this, one CG
    /// pass would fault the whole file resident and an out-of-core run
    /// would peak at the in-memory footprint. Reads are never blocked:
    /// an evicted chunk simply refaults from the page cache.
    #[inline]
    fn note_chunk_access(&self, c: usize) {
        use std::sync::atomic::Ordering::Relaxed;
        if self.residency_chunks == 0 || self.last_touched.load(Relaxed) == c {
            return;
        }
        self.last_touched.store(c, Relaxed);
        self.touch_chunks(std::iter::once(c));
    }

    /// Deduplicated chunk indices touched by `rows`.
    fn chunks_of_rows(&self, rows: &[usize]) -> Vec<usize> {
        let mut cs: Vec<usize> = rows.iter().map(|&i| self.chunk_of(i)).collect();
        cs.sort_unstable();
        cs.dedup();
        cs
    }
}

impl DatasetStore for MmapStore {
    fn len(&self) -> usize {
        self.core.manifest.n
    }

    fn dim(&self) -> usize {
        self.core.manifest.dim
    }

    fn num_classes(&self) -> usize {
        self.core.manifest.num_classes
    }

    fn feature(&self, i: usize) -> &[f64] {
        let core = &*self.core;
        assert!(i < core.manifest.n, "row {i} out of bounds");
        let c = core.chunk_of(i);
        let r = i - c * core.manifest.chunk_rows;
        let d = core.manifest.dim;
        // First-touch integrity: &[f64] cannot carry a Result, so a
        // corrupt block aborts the read with the StoreError rendering
        // (the fallible twin is MmapStore::verify_rows).
        if let Err(e) = core.ensure_bytes_verified(c, r * d * 8, (r + 1) * d * 8) {
            panic!("{e}");
        }
        core.note_chunk_access(c);
        &core.chunk_floats(c)[r * d..(r + 1) * d]
    }

    fn feature_rows(&self, lo: usize, hi: usize) -> &[f64] {
        let core = &*self.core;
        assert!(
            lo <= hi && hi <= core.manifest.n,
            "bad row range {lo}..{hi}"
        );
        assert!(
            hi <= self.contiguous_limit(lo),
            "feature_rows({lo}, {hi}) crosses a shard boundary; \
             callers must respect contiguous_limit"
        );
        let c = core.chunk_of(lo);
        let r = lo - c * core.manifest.chunk_rows;
        let d = core.manifest.dim;
        if let Err(e) = core.ensure_bytes_verified(c, r * d * 8, (r + (hi - lo)) * d * 8) {
            panic!("{e}");
        }
        core.note_chunk_access(c);
        &core.chunk_floats(c)[r * d..(r + (hi - lo)) * d]
    }

    fn contiguous_limit(&self, lo: usize) -> usize {
        ((self.core.chunk_of(lo) + 1) * self.core.manifest.chunk_rows).min(self.core.manifest.n)
    }

    fn shard_boundaries(&self) -> Vec<usize> {
        (0..=self.core.data.len())
            .map(|c| (c * self.core.manifest.chunk_rows).min(self.core.manifest.n))
            .collect()
    }

    fn label(&self, i: usize) -> &SoftLabel {
        &self.labels[i]
    }

    fn is_clean(&self, i: usize) -> bool {
        self.clean[i]
    }

    fn ground_truth(&self, i: usize) -> Option<usize> {
        self.truth[i]
    }

    fn clean_label(&mut self, i: usize, label: SoftLabel) {
        assert_eq!(label.num_classes(), self.core.manifest.num_classes);
        self.labels[i] = label;
        self.clean[i] = true;
    }

    fn set_label(&mut self, i: usize, label: SoftLabel) {
        assert_eq!(label.num_classes(), self.core.manifest.num_classes);
        self.labels[i] = label;
    }

    fn mark_uncleaned(&mut self, i: usize) {
        self.clean[i] = false;
    }

    fn prefetch_rows(&self, rows: &[usize]) {
        // prefetch_rows is an access path: the caller is about to read
        // these rows, so first-touch verification happens here (and the
        // later reads hit the bitmap).
        let core = &*self.core;
        let d8 = core.manifest.dim * 8;
        let rows_per = core.manifest.chunk_rows;
        for i in rows {
            let c = core.chunk_of(*i);
            let r = i - c * rows_per;
            if let Err(e) = core.ensure_bytes_verified(c, r * d8, (r + 1) * d8) {
                panic!("{e}");
            }
        }
        core.touch_chunks(core.chunks_of_rows(rows).into_iter());
    }

    fn advise_range(&self, lo: usize, hi: usize) {
        if lo >= hi {
            return;
        }
        self.core
            .touch_chunks(self.core.chunk_of(lo)..=self.core.chunk_of(hi - 1));
    }

    fn advise_scanned(&self, lo: usize, hi: usize) {
        if lo >= hi {
            return;
        }
        self.core
            .release_chunks(self.core.chunk_of(lo)..=self.core.chunk_of(hi - 1));
    }

    fn prefetch_upcoming(&self, lo: usize, hi: usize) {
        #[cfg(feature = "parallel")]
        {
            if lo < hi {
                if let Some(p) = &self.prefetcher {
                    p.request(self.core.chunk_of(lo), self.core.chunk_of(hi - 1) + 1);
                }
            }
        }
        // Serial twin: no worker to hand the window to — the access
        // path verifies on first touch exactly as before the hint.
        #[cfg(not(feature = "parallel"))]
        let _ = (lo, hi);
    }

    fn io_stats(&self) -> Option<StoreIoStats> {
        Some(self.core.stats.snapshot())
    }
}

/// Stream an FNV-1a-64 checksum over a whole file through `pread` and
/// a caller-pooled scratch buffer (pages pass through the page cache,
/// not this process's resident set).
fn streamed_file_fnv(file: &File, size: u64, scratch: &mut [u8]) -> io::Result<u64> {
    let mut state = FNV_OFFSET;
    let mut off = 0u64;
    while off < size {
        let take = scratch.len().min((size - off) as usize);
        memmap::read_exact_at(file, &mut scratch[..take], off)?;
        state = fnv1a64(state, &scratch[..take]);
        off += take as u64;
    }
    Ok(state)
}

fn read_file_bytes(file: &File, size: u64) -> io::Result<Vec<u8>> {
    let mut bytes = vec![0u8; size as usize];
    memmap::read_exact_at(file, &mut bytes, 0)?;
    Ok(bytes)
}

fn bytes_to_floats(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|b| f64::from_le_bytes(b.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_linalg::Matrix;
    use chef_model::Dataset;

    fn tmp_dir(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("chef-store-{}-{name}", std::process::id()))
    }

    fn fixture(n: usize, d: usize) -> Dataset {
        let mut raw = Vec::with_capacity(n * d);
        let mut labels = Vec::with_capacity(n);
        let mut clean = Vec::with_capacity(n);
        let mut truth = Vec::with_capacity(n);
        for i in 0..n {
            for j in 0..d {
                raw.push((i * d + j) as f64 * 0.25 - 3.0);
            }
            let p = (i % 10) as f64 / 10.0;
            labels.push(SoftLabel::new(vec![p, 1.0 - p]));
            clean.push(i % 3 == 0);
            truth.push(if i % 7 == 0 { None } else { Some(i % 2) });
        }
        Dataset::new(Matrix::from_vec(n, d, raw), labels, clean, truth, 2)
    }

    fn assert_same(a: &dyn DatasetStore, b: &dyn DatasetStore) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.dim(), b.dim());
        assert_eq!(a.num_classes(), b.num_classes());
        for i in 0..a.len() {
            assert_eq!(a.feature(i), b.feature(i), "row {i}");
            assert_eq!(a.label(i).probs(), b.label(i).probs(), "label {i}");
            assert_eq!(a.is_clean(i), b.is_clean(i), "clean {i}");
            assert_eq!(a.ground_truth(i), b.ground_truth(i), "truth {i}");
        }
    }

    #[test]
    fn round_trip_preserves_every_row_bit_for_bit() {
        let dir = tmp_dir("roundtrip");
        let data = fixture(37, 5);
        let manifest = write_store(&data, &dir, 8).unwrap();
        assert_eq!(manifest.chunks.len(), 5); // 4 full shards + 5 rows
        assert_eq!(manifest.chunks[4].rows, 5);
        let store = MmapStore::open(&dir).unwrap();
        assert_same(&data, &store);
        // Shard geometry.
        assert_eq!(store.shard_boundaries(), vec![0, 8, 16, 24, 32, 37]);
        assert_eq!(store.contiguous_limit(0), 8);
        assert_eq!(store.contiguous_limit(33), 37);
        // Zero-copy block reads within a shard match the dense matrix.
        assert_eq!(store.feature_rows(8, 16), data.feature_rows(8, 16));
        assert_eq!(store.feature_rows(32, 37), data.feature_rows(32, 37));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pread_fallback_is_equivalent() {
        let dir = tmp_dir("pread");
        let data = fixture(20, 3);
        write_store(&data, &dir, 6).unwrap();
        let store = MmapStore::open_with(
            &dir,
            StoreOptions {
                force_pread: true,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        assert_same(&data, &store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn to_dataset_materializes_the_same_data() {
        let dir = tmp_dir("todataset");
        let data = fixture(25, 4);
        write_store(&data, &dir, 10).unwrap();
        let store = MmapStore::open(&dir).unwrap();
        let back = store.to_dataset();
        assert_same(&data, &back);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn label_mutations_update_ram_state() {
        let dir = tmp_dir("mutate");
        write_store(&fixture(12, 2), &dir, 4).unwrap();
        let mut store = MmapStore::open(&dir).unwrap();
        let before_uncleaned = store.uncleaned_indices();
        store.clean_label(1, SoftLabel::onehot(0, 2));
        assert!(store.is_clean(1));
        assert_eq!(store.label(1).probs(), &[1.0, 0.0]);
        assert_eq!(store.uncleaned_indices().len(), before_uncleaned.len() - 1);
        store.mark_uncleaned(1);
        assert!(!store.is_clean(1));
        store.set_label(2, SoftLabel::new(vec![0.4, 0.6]));
        assert!(!store.is_clean(2) || store.is_clean(2)); // set_label leaves the flag
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn residency_hints_do_not_change_data() {
        let dir = tmp_dir("hints");
        let data = fixture(40, 3);
        write_store(&data, &dir, 8).unwrap();
        let store = MmapStore::open_with(
            &dir,
            StoreOptions {
                residency_chunks: 2, // force eviction
                ..StoreOptions::default()
            },
        )
        .unwrap();
        store.prefetch_rows(&[0, 9, 17, 25, 33]);
        store.advise_range(0, 40);
        for i in 0..40 {
            assert_eq!(store.feature(i), data.feature(i));
        }
        store.advise_scanned(0, 40);
        assert_eq!(store.feature(39), data.feature(39)); // still readable
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_version_is_rejected() {
        let dir = tmp_dir("version");
        write_store(&fixture(5, 2), &dir, 4).unwrap();
        let path = dir.join(MANIFEST_FILE_V2);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replacen("chef-store.v2", "chef-store.v3", 1)).unwrap();
        match MmapStore::open(&dir) {
            Err(StoreError::Version(v)) => assert_eq!(v, "chef-store.v3"),
            other => panic!("expected version error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v1_manifest_directories_still_open() {
        let dir = tmp_dir("v1compat");
        let data = fixture(23, 3);
        let m2 = write_store(&data, &dir, 6).unwrap();
        // Rewrite the directory as a v1-era one: demote the manifest to
        // generation 1 (whole-shard checksums only) under the old file
        // name and drop store.v2.
        let m1 = Manifest {
            version: 1,
            block_bytes: 0,
            chunks: m2
                .chunks
                .iter()
                .map(|c| ChunkMeta {
                    blocks: Vec::new(),
                    ..c.clone()
                })
                .collect(),
            ..m2.clone()
        };
        fs::write(dir.join(MANIFEST_FILE), m1.render()).unwrap();
        fs::remove_file(dir.join(MANIFEST_FILE_V2)).unwrap();
        for integrity in [
            IntegrityMode::Eager,
            IntegrityMode::LazyFirstTouch,
            IntegrityMode::Off,
        ] {
            let store = MmapStore::open_with(
                &dir,
                StoreOptions {
                    integrity,
                    ..StoreOptions::default()
                },
            )
            .unwrap();
            assert_eq!(store.manifest().version, 1);
            assert_same(&data, &store);
            // Under lazy, a v1 shard is one whole-shard block.
            store.verify_all().unwrap();
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_emits_v2_manifest_with_block_table() {
        let dir = tmp_dir("v2meta");
        let m = write_store(&fixture(9, 4), &dir, 4).unwrap();
        assert_eq!(m.version, 2);
        assert_eq!(m.block_bytes, DEFAULT_BLOCK_BYTES);
        assert!(dir.join(MANIFEST_FILE_V2).exists());
        assert!(!dir.join(MANIFEST_FILE).exists());
        for (c, meta) in m.chunks.iter().enumerate() {
            // Shards here are far below one block, so each is a single
            // block covering the whole shard: the word-folded block
            // checksum sits beside the byte-wise whole-shard one.
            let bytes = fs::read(dir.join(chunk_file_name(c))).unwrap();
            assert_eq!(meta.blocks.len(), 1, "chunk {c}");
            assert_eq!(meta.fnv, fnv1a64(FNV_OFFSET, &bytes), "chunk {c}");
            assert_eq!(
                meta.blocks[0],
                fnv1a64_words(FNV_OFFSET, &bytes),
                "chunk {c}"
            );
            assert_eq!(m.num_blocks(c), 1);
            assert_eq!(m.block_fnv(c, 0), meta.blocks[0]);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn small_blocks_round_trip_and_verify_lazily() {
        let dir = tmp_dir("smallblocks");
        let data = fixture(30, 4);
        let mut w = StoreWriter::create(&dir, 4, 2, 8)
            .unwrap()
            .with_block_bytes(64); // 2 rows per block, 4 blocks per shard
        for i in 0..30 {
            w.push_row(
                data.feature(i),
                data.label(i).clone(),
                data.is_clean(i),
                data.ground_truth(i),
            )
            .unwrap();
        }
        let m = w.finish().unwrap();
        assert_eq!(m.chunks[0].blocks.len(), 4);
        let store = MmapStore::open_with(
            &dir,
            StoreOptions {
                integrity: IntegrityMode::LazyFirstTouch,
                background_prefetch: false,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        assert_same(&data, &store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lazy_first_touch_verifies_each_block_exactly_once() {
        let dir = tmp_dir("lazyonce");
        let data = fixture(40, 3);
        write_store(&data, &dir, 8).unwrap(); // 5 shards, 1 block each
        let store = MmapStore::open_with(
            &dir,
            StoreOptions {
                integrity: IntegrityMode::LazyFirstTouch,
                background_prefetch: false,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        let at_open = store.io_stats().unwrap();
        assert_eq!(at_open.blocks_verified, 0, "nothing touched yet");
        for i in 0..40 {
            assert_eq!(store.feature(i), data.feature(i));
        }
        let after_first = store.io_stats().unwrap();
        assert_eq!(after_first.blocks_verified, 5, "one verify per block");
        for i in 0..40 {
            let _ = store.feature(i);
        }
        let after_second = store.io_stats().unwrap();
        assert_eq!(after_second.blocks_verified, 5, "bitmap made reads free");
        assert!(after_second.lazy_verify_hits > after_first.lazy_verify_hits);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lazy_detects_bitflip_on_first_touch_of_that_block() {
        let dir = tmp_dir("lazyflip");
        let data = fixture(30, 4);
        let mut w = StoreWriter::create(&dir, 4, 2, 8)
            .unwrap()
            .with_block_bytes(64);
        for i in 0..30 {
            w.push_row(
                data.feature(i),
                data.label(i).clone(),
                data.is_clean(i),
                data.ground_truth(i),
            )
            .unwrap();
        }
        w.finish().unwrap();
        // Flip a bit in the LAST block of shard 0 (rows 6..8).
        let chunk = dir.join(chunk_file_name(0));
        let mut bytes = fs::read(&chunk).unwrap();
        let at = bytes.len() - 5;
        bytes[at] ^= 0x10;
        fs::write(&chunk, &bytes).unwrap();
        let store = MmapStore::open_with(
            &dir,
            StoreOptions {
                integrity: IntegrityMode::LazyFirstTouch,
                background_prefetch: false,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        // Untouched-block reads still fine:
        assert_eq!(store.feature(0), data.feature(0));
        store.verify_rows(0, 6).unwrap();
        // Touching the corrupt block surfaces Corrupt:
        match store.verify_rows(6, 8) {
            Err(StoreError::Corrupt(msg)) => {
                assert!(msg.contains("checksum mismatch"), "{msg}")
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
        // ... and the store stays poisoned for verified reads.
        assert!(matches!(
            store.verify_rows(0, 6),
            Err(StoreError::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn background_prefetcher_warms_without_changing_data() {
        let dir = tmp_dir("prefetch");
        let data = fixture(40, 3);
        write_store(&data, &dir, 8).unwrap();
        let store = MmapStore::open_with(
            &dir,
            StoreOptions {
                integrity: IntegrityMode::LazyFirstTouch,
                background_prefetch: true,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        store.prefetch_upcoming(8, 24); // shards 1..3
        store.prefetch_upcoming(24, 40); // coalesces/queues behind it
        for i in 0..40 {
            assert_eq!(store.feature(i), data.feature(i));
        }
        store.verify_all().unwrap();
        let stats = store.io_stats().unwrap();
        assert_eq!(stats.blocks_verified, 5, "prefetch + reads share bitmap");
        drop(store); // joins the worker
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_shard_truncation_is_rejected() {
        let dir = tmp_dir("torn-size");
        write_store(&fixture(10, 2), &dir, 4).unwrap();
        let chunk = dir.join(chunk_file_name(1));
        let bytes = fs::read(&chunk).unwrap();
        fs::write(&chunk, &bytes[..bytes.len() - 8]).unwrap();
        match MmapStore::open(&dir) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("torn shard"), "{msg}"),
            other => panic!("expected corrupt error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_shard_bitflip_is_rejected_by_checksum() {
        let dir = tmp_dir("torn-flip");
        write_store(&fixture(10, 2), &dir, 4).unwrap();
        let chunk = dir.join(chunk_file_name(0));
        let mut bytes = fs::read(&chunk).unwrap();
        bytes[3] ^= 0x40; // same size, different contents
        fs::write(&chunk, &bytes).unwrap();
        match MmapStore::open(&dir) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected checksum error, got {other:?}"),
        }
        // With verification off the torn shard goes undetected — which
        // is exactly why integrity defaults to Eager.
        assert!(MmapStore::open_with(
            &dir,
            StoreOptions {
                integrity: IntegrityMode::Off,
                ..StoreOptions::default()
            }
        )
        .is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_an_io_error() {
        let dir = tmp_dir("missing");
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(MmapStore::open(&dir), Err(StoreError::Io(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_renders_and_parses_losslessly() {
        let dir = tmp_dir("manifest");
        let m = write_store(&fixture(17, 3), &dir, 5).unwrap();
        let parsed = Manifest::parse(&m.render()).unwrap();
        assert_eq!(parsed, m);
        fs::remove_dir_all(&dir).unwrap();
    }
}
