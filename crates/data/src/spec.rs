//! Dataset specifications mirroring the paper's six datasets.
//!
//! Split sizes follow Table 3 of the paper divided by a scale factor
//! (default 20) so a full experiment grid runs on one CPU in seconds while
//! keeping the relative dataset sizes — and therefore the relative
//! selector/constructor costs that Tables 2 and Figure 2 compare — intact.

/// How probabilistic labels are produced for a dataset (paper §5.1,
/// "Producing probabilistic labels").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// *Fully clean* datasets (MIMIC, Retina, Chexpert): ground truth is
    /// known for every sample; the paper assigns **random** probabilistic
    /// labels because no text is available for labeling functions.
    FullyClean,
    /// *Crowdsourced* datasets (Fashion, Fact, Twitter): probabilistic
    /// labels come from labeling functions over associated text (here:
    /// noisy feature projections) combined by a label model; crowd
    /// workers provide the cleaned labels.
    Crowdsourced,
}

/// Generation profile for one synthetic dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Display name (paper dataset it stands in for).
    pub name: &'static str,
    /// Label-production mode.
    pub kind: DatasetKind,
    /// Training-set size.
    pub train: usize,
    /// Validation-set size.
    pub val: usize,
    /// Test-set size.
    pub test: usize,
    /// Embedding dimension (stands in for pooled ResNet50/BERT features).
    pub dim: usize,
    /// Number of classes (the paper reduces every task to binary).
    pub num_classes: usize,
    /// Distance between class means in feature space; controls Bayes
    /// error and hence the attainable F1 plateau of each dataset.
    pub class_sep: f64,
    /// Marginal probability of the positive class (class 1).
    pub positive_rate: f64,
    /// Fraction of *ground-truth* labels that are themselves wrong
    /// (mirrors Chexpert's automated labeler noise; paper §5.3).
    pub truth_noise: f64,
    /// Quality of the weak labels in `[0.5, 1]`: probability that a
    /// labeling function's underlying signal agrees with ground truth.
    /// Ignored for [`DatasetKind::FullyClean`] (labels are random there).
    pub weak_quality: f64,
    /// Error rate of one simulated human annotator on this dataset. The
    /// paper flips 5% of ground truth for the medical datasets (expert
    /// radiologists) but uses raw crowd labels for the crowdsourced ones,
    /// whose per-worker error is far higher — that asymmetry is what lets
    /// Infl (two) beat majority-vote humans there.
    pub annotator_error: f64,
}

impl DatasetSpec {
    /// Scale all split sizes by `1/factor` (rounding, with floors of 30
    /// training and 100 validation/test samples to keep metrics stable).
    pub fn scaled(mut self, factor: usize) -> Self {
        assert!(factor >= 1, "scale factor must be ≥ 1");
        self.train = (self.train / factor).max(30);
        self.val = (self.val / factor).max(100);
        self.test = (self.test / factor).max(100);
        self
    }
}

/// The six paper datasets at `1/scale` of their Table 3 sizes.
///
/// `scale = 5` (the harness default) gives training sets of roughly
/// 2300–15700 samples — large enough that Increm-Infl's pruning and
/// DeltaGrad-L's replay show the paper's speed-up shape, small enough for
/// a laptop run.
pub fn paper_suite(scale: usize) -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "MIMIC",
            kind: DatasetKind::FullyClean,
            train: 78487,
            val: 579,
            test: 1628,
            dim: 32,
            num_classes: 2,
            class_sep: 1.0,
            positive_rate: 0.45,
            truth_noise: 0.0,
            weak_quality: 0.5,
            annotator_error: 0.05,
        }
        .scaled(scale),
        DatasetSpec {
            name: "Retina",
            kind: DatasetKind::FullyClean,
            train: 31615,
            val: 3512,
            test: 3512, // paper uses 53k test; capped to val size for tractability
            dim: 32,
            num_classes: 2,
            class_sep: 0.8,
            positive_rate: 0.30,
            truth_noise: 0.0,
            weak_quality: 0.5,
            annotator_error: 0.05,
        }
        .scaled(scale),
        DatasetSpec {
            name: "Chexpert",
            kind: DatasetKind::FullyClean,
            train: 37882,
            val: 234,
            test: 234,
            dim: 32,
            num_classes: 2,
            class_sep: 0.7,
            positive_rate: 0.40,
            // Chexpert ground truth comes from an automated labeler; the
            // paper attributes Infl(one) < Infl(two) there to those errors.
            truth_noise: 0.05,
            weak_quality: 0.5,
            annotator_error: 0.05,
        }
        .scaled(scale),
        DatasetSpec {
            name: "Fashion",
            kind: DatasetKind::Crowdsourced,
            train: 29031,
            val: 146,
            test: 146,
            dim: 32,
            num_classes: 2,
            class_sep: 0.4,
            positive_rate: 0.50,
            truth_noise: 0.0,
            weak_quality: 0.35,
            annotator_error: 0.25,
        }
        .scaled(scale),
        DatasetSpec {
            name: "Fact",
            kind: DatasetKind::Crowdsourced,
            train: 38176,
            val: 255,
            test: 259,
            dim: 32,
            num_classes: 2,
            class_sep: 0.6,
            positive_rate: 0.55,
            truth_noise: 0.0,
            weak_quality: 0.40,
            annotator_error: 0.25,
        }
        .scaled(scale),
        DatasetSpec {
            name: "Twitter",
            kind: DatasetKind::Crowdsourced,
            train: 11606,
            val: 37,
            test: 37,
            dim: 32,
            num_classes: 2,
            class_sep: 0.8,
            positive_rate: 0.40,
            truth_noise: 0.0,
            weak_quality: 0.38,
            annotator_error: 0.25,
        }
        .scaled(scale),
    ]
}

/// Look up one spec from [`paper_suite`] by (case-insensitive) name.
pub fn by_name(name: &str, scale: usize) -> Option<DatasetSpec> {
    paper_suite(scale)
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_six_datasets() {
        let suite = paper_suite(20);
        assert_eq!(suite.len(), 6);
        let names: Vec<_> = suite.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["MIMIC", "Retina", "Chexpert", "Fashion", "Fact", "Twitter"]
        );
    }

    #[test]
    fn scaling_preserves_relative_sizes() {
        let s1 = paper_suite(1);
        let s20 = paper_suite(20);
        // MIMIC stays the largest training set at any scale.
        let max1 = s1.iter().max_by_key(|s| s.train).unwrap().name;
        let max20 = s20.iter().max_by_key(|s| s.train).unwrap().name;
        assert_eq!(max1, "MIMIC");
        assert_eq!(max20, "MIMIC");
        // Twitter stays the smallest.
        assert_eq!(s20.iter().min_by_key(|s| s.train).unwrap().name, "Twitter");
    }

    #[test]
    fn scaled_enforces_floors() {
        let tiny = paper_suite(1_000_000);
        for s in &tiny {
            assert!(s.train >= 30 && s.val >= 15 && s.test >= 15);
        }
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(by_name("mimic", 20).is_some());
        assert!(by_name("TWITTER", 20).is_some());
        assert!(by_name("imagenet", 20).is_none());
    }

    #[test]
    fn kinds_match_paper_grouping() {
        for s in paper_suite(20) {
            let expect = matches!(s.name, "Fashion" | "Fact" | "Twitter");
            assert_eq!(s.kind == DatasetKind::Crowdsourced, expect, "{}", s.name);
        }
    }
}
