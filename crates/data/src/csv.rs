//! CSV import/export for datasets.
//!
//! The synthetic generators stand in for the paper's gated downloads, but
//! a downstream user with real embeddings (e.g. pooled ResNet50/BERT
//! features exported from Python) needs a way in. The format is plain
//! CSV, one sample per row:
//!
//! ```text
//! f0,f1,...,f{d-1},p0,p1,...,p{C-1},clean,truth
//! ```
//!
//! * `f*` — feature values;
//! * `p*` — the (probabilistic) label, C columns summing to 1;
//! * `clean` — `0`/`1` flag (1 = deterministic label of `Z_d`);
//! * `truth` — ground-truth class index, or empty when unknown.
//!
//! A one-line header `dim=<d>,classes=<C>` pins the split between the
//! feature and label columns so files are self-describing.

use crate::Split;
use chef_linalg::Matrix;
use chef_model::{Dataset, SoftLabel};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the file, with a human-readable message.
    Parse(String),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv io error: {e}"),
            CsvError::Parse(m) => write!(f, "csv parse error: {m}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

fn parse_err(line: usize, msg: impl Into<String>) -> CsvError {
    CsvError::Parse(format!("line {line}: {}", msg.into()))
}

/// Serialize a dataset to the CSV format above.
pub fn dataset_to_csv(data: &Dataset) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "dim={},classes={}", data.dim(), data.num_classes());
    for i in 0..data.len() {
        let mut cols: Vec<String> = data.feature(i).iter().map(|v| format!("{v}")).collect();
        cols.extend(data.label(i).probs().iter().map(|v| format!("{v}")));
        cols.push(usize::from(data.is_clean(i)).to_string());
        cols.push(
            data.ground_truth(i)
                .map(|t| t.to_string())
                .unwrap_or_default(),
        );
        out.push_str(&cols.join(","));
        out.push('\n');
    }
    out
}

/// Write a dataset to a CSV file.
pub fn write_dataset(data: &Dataset, path: impl AsRef<Path>) -> Result<(), CsvError> {
    std::fs::write(path, dataset_to_csv(data))?;
    Ok(())
}

/// Parse a dataset from CSV text.
pub fn dataset_from_csv(text: &str) -> Result<Dataset, CsvError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| parse_err(1, "empty file"))?;
    let mut dim = None;
    let mut classes = None;
    for part in header.split(',') {
        match part.trim().split_once('=') {
            Some(("dim", v)) => {
                dim = Some(
                    v.parse::<usize>()
                        .map_err(|_| parse_err(1, format!("bad dim `{v}`")))?,
                )
            }
            Some(("classes", v)) => {
                classes = Some(
                    v.parse::<usize>()
                        .map_err(|_| parse_err(1, format!("bad classes `{v}`")))?,
                )
            }
            _ => return Err(parse_err(1, format!("unexpected header field `{part}`"))),
        }
    }
    let dim = dim.ok_or_else(|| parse_err(1, "missing dim="))?;
    let classes = classes.ok_or_else(|| parse_err(1, "missing classes="))?;
    if dim == 0 || classes < 2 {
        return Err(parse_err(1, "need dim ≥ 1 and classes ≥ 2"));
    }

    let mut raw = Vec::new();
    let mut labels = Vec::new();
    let mut clean = Vec::new();
    let mut truth = Vec::new();
    let expected = dim + classes + 2;
    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != expected {
            return Err(parse_err(
                lineno,
                format!("expected {expected} columns, got {}", cols.len()),
            ));
        }
        for c in &cols[..dim] {
            let v: f64 = c
                .trim()
                .parse()
                .map_err(|_| parse_err(lineno, format!("bad feature `{c}`")))?;
            if !v.is_finite() {
                return Err(parse_err(lineno, "non-finite feature"));
            }
            raw.push(v);
        }
        let mut probs = Vec::with_capacity(classes);
        for c in &cols[dim..dim + classes] {
            probs.push(
                c.trim()
                    .parse::<f64>()
                    .map_err(|_| parse_err(lineno, format!("bad probability `{c}`")))?,
            );
        }
        let sum: f64 = probs.iter().sum();
        if !((sum - 1.0).abs() < 1e-6 && probs.iter().all(|p| *p >= 0.0 && p.is_finite())) {
            return Err(parse_err(lineno, format!("invalid label {probs:?}")));
        }
        labels.push(SoftLabel::new(probs));
        clean.push(match cols[dim + classes].trim() {
            "0" => false,
            "1" => true,
            other => return Err(parse_err(lineno, format!("bad clean flag `{other}`"))),
        });
        let t = cols[dim + classes + 1].trim();
        truth.push(if t.is_empty() {
            None
        } else {
            let v: usize = t
                .parse()
                .map_err(|_| parse_err(lineno, format!("bad truth `{t}`")))?;
            if v >= classes {
                return Err(parse_err(lineno, format!("truth {v} out of {classes}")));
            }
            Some(v)
        });
    }
    let n = labels.len();
    Ok(Dataset::new(
        Matrix::from_vec(n, dim, raw),
        labels,
        clean,
        truth,
        classes,
    ))
}

/// Read a dataset from a CSV file.
pub fn read_dataset(path: impl AsRef<Path>) -> Result<Dataset, CsvError> {
    dataset_from_csv(&std::fs::read_to_string(path)?)
}

/// Write a whole split as `<stem>.train.csv` / `.val.csv` / `.test.csv`.
pub fn write_split(split: &Split, dir: impl AsRef<Path>, stem: &str) -> Result<(), CsvError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    write_dataset(&split.train, dir.join(format!("{stem}.train.csv")))?;
    write_dataset(&split.val, dir.join(format!("{stem}.val.csv")))?;
    write_dataset(&split.test, dir.join(format!("{stem}.test.csv")))?;
    Ok(())
}

/// Read a split written by [`write_split`].
pub fn read_split(dir: impl AsRef<Path>, stem: &str) -> Result<Split, CsvError> {
    let dir = dir.as_ref();
    Ok(Split {
        train: read_dataset(dir.join(format!("{stem}.train.csv")))?,
        val: read_dataset(dir.join(format!("{stem}.val.csv")))?,
        test: read_dataset(dir.join(format!("{stem}.test.csv")))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DatasetKind, DatasetSpec};

    fn sample_dataset() -> Dataset {
        let spec = DatasetSpec {
            name: "csv-test",
            kind: DatasetKind::FullyClean,
            train: 25,
            val: 10,
            test: 10,
            dim: 4,
            num_classes: 2,
            class_sep: 1.0,
            positive_rate: 0.5,
            truth_noise: 0.0,
            weak_quality: 0.5,
            annotator_error: 0.05,
        };
        let mut split = crate::generate(&spec, 3);
        split.train.set_label(0, SoftLabel::new(vec![0.25, 0.75]));
        split.train.mark_uncleaned(0);
        split
            .train
            .push(&[1.0, 2.0, 3.0, 4.0], SoftLabel::uniform(2), false, None);
        split.train
    }

    #[test]
    fn round_trip_preserves_everything() {
        let data = sample_dataset();
        let text = dataset_to_csv(&data);
        let back = dataset_from_csv(&text).unwrap();
        assert_eq!(back.len(), data.len());
        assert_eq!(back.dim(), data.dim());
        assert_eq!(back.num_classes(), data.num_classes());
        for i in 0..data.len() {
            assert_eq!(back.feature(i), data.feature(i), "features {i}");
            assert_eq!(back.label(i), data.label(i), "label {i}");
            assert_eq!(back.is_clean(i), data.is_clean(i), "clean {i}");
            assert_eq!(back.ground_truth(i), data.ground_truth(i), "truth {i}");
        }
    }

    #[test]
    fn file_round_trip_for_split() {
        let spec = DatasetSpec {
            name: "csv-split",
            kind: DatasetKind::FullyClean,
            train: 12,
            val: 6,
            test: 6,
            dim: 3,
            num_classes: 2,
            class_sep: 1.0,
            positive_rate: 0.5,
            truth_noise: 0.0,
            weak_quality: 0.5,
            annotator_error: 0.05,
        };
        let split = crate::generate(&spec, 7);
        let dir = std::env::temp_dir().join("chef_csv_test");
        write_split(&split, &dir, "demo").unwrap();
        let back = read_split(&dir, "demo").unwrap();
        assert_eq!(back.train.len(), 12);
        assert_eq!(back.val.len(), 6);
        assert_eq!(back.test.feature(0), split.test.feature(0));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(dataset_from_csv("").is_err());
        assert!(dataset_from_csv("dim=2\n").is_err()); // missing classes
        assert!(dataset_from_csv("dim=0,classes=2\n").is_err());
        // Wrong column count.
        let e = dataset_from_csv("dim=2,classes=2\n1.0,2.0,0.5\n");
        assert!(matches!(e, Err(CsvError::Parse(_))), "{e:?}");
        // Label does not sum to 1.
        assert!(dataset_from_csv("dim=1,classes=2\n1.0,0.9,0.9,0,\n").is_err());
        // Non-finite feature.
        assert!(dataset_from_csv("dim=1,classes=2\nNaN,0.5,0.5,0,\n").is_err());
        // Bad clean flag.
        assert!(dataset_from_csv("dim=1,classes=2\n1.0,0.5,0.5,yes,\n").is_err());
        // Truth out of range.
        assert!(dataset_from_csv("dim=1,classes=2\n1.0,0.5,0.5,0,7\n").is_err());
    }

    #[test]
    fn empty_truth_means_unknown() {
        let d = dataset_from_csv("dim=1,classes=2\n1.5,0.5,0.5,0,\n").unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.ground_truth(0), None);
        assert!(!d.is_clean(0));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let d = dataset_from_csv("dim=1,classes=2\n1.0,1,0,1,0\n\n2.0,0,1,0,1\n").unwrap();
        assert_eq!(d.len(), 2);
    }
}
