//! Gaussian-mixture embedding generator.
//!
//! Features are drawn as `x = μ_c + ε`, `ε ~ N(0, I)`, with class means
//! `μ_c` placed `class_sep` apart along a random unit direction plus small
//! per-class random offsets, emulating the cluster structure frozen
//! backbones produce. Ground truth is sampled from the spec's class
//! marginal; optional `truth_noise` flips a fraction of the *recorded*
//! ground truth to emulate noisy reference labels (Chexpert).
//!
//! The returned training set carries **ground-truth one-hot labels marked
//! clean** — callers (normally `chef-weak`) immediately replace them with
//! probabilistic labels and clear the clean flags, which keeps this crate
//! free of any weak-supervision policy.

use crate::spec::DatasetSpec;
use chef_linalg::{vector, Matrix};
use chef_model::{Dataset, SoftLabel};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A train/validation/test triple.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training samples (labels = recorded ground truth until weakened).
    pub train: Dataset,
    /// Validation samples (trusted deterministic labels, paper §3.1).
    pub val: Dataset,
    /// Held-out test samples.
    pub test: Dataset,
}

/// Standard normal sample via Box–Muller (keeps us on `rand` core only).
fn randn(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Class means `class_sep` apart along a random direction.
fn class_means(spec: &DatasetSpec, rng: &mut SmallRng) -> Vec<Vec<f64>> {
    let mut dir: Vec<f64> = (0..spec.dim).map(|_| randn(rng)).collect();
    let n = vector::norm2(&dir);
    vector::scale(1.0 / n.max(1e-12), &mut dir);
    (0..spec.num_classes)
        .map(|c| {
            let offset = c as f64 - (spec.num_classes - 1) as f64 / 2.0;
            let mut mu: Vec<f64> = dir.iter().map(|d| d * offset * spec.class_sep).collect();
            // Small per-class jitter so classes are not perfectly colinear.
            for m in mu.iter_mut() {
                *m += 0.1 * randn(rng);
            }
            mu
        })
        .collect()
}

/// Sample a class from the spec's marginal (binary uses `positive_rate`;
/// more classes split the remainder evenly).
fn sample_class(spec: &DatasetSpec, rng: &mut SmallRng) -> usize {
    if spec.num_classes == 2 {
        usize::from(rng.gen_range(0.0..1.0) < spec.positive_rate)
    } else {
        rng.gen_range(0..spec.num_classes)
    }
}

/// Draw `n` samples row by row, handing each to `sink` as it is
/// produced. This is the single source of truth for the per-row RNG
/// draw order (class → `dim` feature draws → flip roll → flip shift),
/// shared by the in-memory [`generate`] and the streaming
/// [`generate_train_store`] so both emit bit-identical rows from the
/// same seed.
fn emit_part(
    spec: &DatasetSpec,
    means: &[Vec<f64>],
    n: usize,
    noisy_truth: bool,
    rng: &mut SmallRng,
    mut sink: impl FnMut(&[f64], usize) -> std::io::Result<()>,
) -> std::io::Result<()> {
    let mut row = vec![0.0; spec.dim];
    for _ in 0..n {
        let true_class = sample_class(spec, rng);
        for (x, mu_d) in row.iter_mut().zip(&means[true_class]) {
            *x = mu_d + randn(rng);
        }
        // Recorded truth may itself be wrong (automated labelers). Both
        // random draws happen unconditionally so that datasets generated
        // from the same seed with different `truth_noise` share features.
        let flip_roll = rng.gen_range(0.0..1.0);
        let flip_shift = rng.gen_range(0..spec.num_classes - 1);
        let recorded = if noisy_truth && flip_roll < spec.truth_noise {
            (true_class + 1 + flip_shift) % spec.num_classes
        } else {
            true_class
        };
        sink(&row, recorded)?;
    }
    Ok(())
}

fn make_part(
    spec: &DatasetSpec,
    means: &[Vec<f64>],
    n: usize,
    noisy_truth: bool,
    rng: &mut SmallRng,
) -> Dataset {
    let mut raw = Vec::with_capacity(n * spec.dim);
    let mut labels = Vec::with_capacity(n);
    let mut truth = Vec::with_capacity(n);
    emit_part(spec, means, n, noisy_truth, rng, |row, recorded| {
        raw.extend_from_slice(row);
        labels.push(SoftLabel::onehot(recorded, spec.num_classes));
        truth.push(Some(recorded));
        Ok(())
    })
    .expect("in-memory sink cannot fail");
    Dataset::new(
        Matrix::from_vec(n, spec.dim, raw),
        labels,
        vec![true; n],
        truth,
        spec.num_classes,
    )
}

/// Generate a full [`Split`] for a dataset spec, deterministically in
/// `seed`.
pub fn generate(spec: &DatasetSpec, seed: u64) -> Split {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xc5ef_da7a_5eed);
    let means = class_means(spec, &mut rng);
    let train = make_part(spec, &means, spec.train, true, &mut rng);
    // Validation/test labels are human-verified in the paper — no noise.
    let val = make_part(spec, &means, spec.val, false, &mut rng);
    let test = make_part(spec, &means, spec.test, false, &mut rng);
    Split { train, val, test }
}

/// Like [`generate`], but **stream the training part straight into an
/// on-disk `store.v1` directory** instead of materializing it: peak
/// memory is one shard plus the O(n) label columns, so a training set
/// larger than RAM can be produced. The (small) validation and test
/// parts are returned in memory.
///
/// Uses the same RNG stream as [`generate`], so for any `(spec, seed)`
/// the rows written to `dir` are bit-identical to `generate(spec,
/// seed).train` and the returned val/test datasets are identical to the
/// in-memory split's.
pub fn generate_train_store(
    spec: &DatasetSpec,
    seed: u64,
    dir: &std::path::Path,
    chunk_rows: usize,
) -> std::io::Result<(crate::store::Manifest, Dataset, Dataset)> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xc5ef_da7a_5eed);
    let means = class_means(spec, &mut rng);
    let mut writer =
        crate::store::StoreWriter::create(dir, spec.dim, spec.num_classes, chunk_rows)?;
    emit_part(spec, &means, spec.train, true, &mut rng, |row, recorded| {
        writer.push_row(
            row,
            SoftLabel::onehot(recorded, spec.num_classes),
            true,
            Some(recorded),
        )
    })?;
    let manifest = writer.finish()?;
    let val = make_part(spec, &means, spec.val, false, &mut rng);
    let test = make_part(spec, &means, spec.test, false, &mut rng);
    Ok((manifest, val, test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{paper_suite, DatasetKind};

    fn small_spec() -> DatasetSpec {
        DatasetSpec {
            name: "toy",
            kind: DatasetKind::FullyClean,
            train: 200,
            val: 50,
            test: 50,
            dim: 8,
            num_classes: 2,
            class_sep: 2.0,
            positive_rate: 0.4,
            truth_noise: 0.0,
            weak_quality: 0.8,
            annotator_error: 0.05,
        }
    }

    #[test]
    fn sizes_match_spec() {
        let s = generate(&small_spec(), 1);
        assert_eq!(s.train.len(), 200);
        assert_eq!(s.val.len(), 50);
        assert_eq!(s.test.len(), 50);
        assert_eq!(s.train.dim(), 8);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&small_spec(), 7);
        let b = generate(&small_spec(), 7);
        assert_eq!(a.train.feature(0), b.train.feature(0));
        assert_eq!(a.test.feature(10), b.test.feature(10));
        let c = generate(&small_spec(), 8);
        assert_ne!(a.train.feature(0), c.train.feature(0));
    }

    #[test]
    fn class_marginal_approximates_positive_rate() {
        let mut spec = small_spec();
        spec.train = 4000;
        let s = generate(&spec, 3);
        let pos = (0..s.train.len())
            .filter(|&i| s.train.ground_truth(i) == Some(1))
            .count() as f64
            / s.train.len() as f64;
        assert!((pos - 0.4).abs() < 0.05, "positive rate {pos}");
    }

    #[test]
    fn classes_are_linearly_separable_enough() {
        // With class_sep = 2 a mean-threshold classifier along the
        // difference of class centroids should beat 75% accuracy (the
        // Bayes rate along the separating direction is ~84%). Use a
        // large test split so the accuracy estimate's binomial noise
        // (~1pp at n=1000) cannot cross the threshold by chance.
        let mut spec = small_spec();
        spec.test = 1000;
        let s = generate(&spec, 5);
        let d = s.train.dim();
        let mut mu0 = vec![0.0; d];
        let mut mu1 = vec![0.0; d];
        let (mut n0, mut n1) = (0.0, 0.0);
        for i in 0..s.train.len() {
            let target = if s.train.ground_truth(i) == Some(1) {
                n1 += 1.0;
                &mut mu1
            } else {
                n0 += 1.0;
                &mut mu0
            };
            vector::axpy(1.0, s.train.feature(i), target);
        }
        vector::scale(1.0 / n0, &mut mu0);
        vector::scale(1.0 / n1, &mut mu1);
        let w = vector::sub(&mu1, &mu0);
        let mid = 0.5 * (vector::dot(&w, &mu0) + vector::dot(&w, &mu1));
        let correct = (0..s.test.len())
            .filter(|&i| {
                let pred = usize::from(vector::dot(&w, s.test.feature(i)) > mid);
                Some(pred) == s.test.ground_truth(i)
            })
            .count();
        assert!(
            correct as f64 / s.test.len() as f64 > 0.75,
            "accuracy {}",
            correct as f64 / s.test.len() as f64
        );
    }

    #[test]
    fn truth_noise_flips_recorded_labels() {
        let mut spec = small_spec();
        spec.truth_noise = 0.3;
        spec.train = 3000;
        spec.class_sep = 5.0; // strong separation → flips dominate errors
        let s = generate(&spec, 9);
        // Train a centroid classifier on *features* and compare against
        // recorded truth: with 30% noise the agreement caps near 70%.
        let mismatch = {
            let strong = generate(
                &DatasetSpec {
                    truth_noise: 0.0,
                    ..spec.clone()
                },
                9,
            );
            // Same seed & means → identical features; compare recorded truths.
            (0..s.train.len())
                .filter(|&i| s.train.ground_truth(i) != strong.train.ground_truth(i))
                .count() as f64
                / s.train.len() as f64
        };
        assert!(
            (mismatch - 0.3).abs() < 0.05,
            "recorded-truth flip rate {mismatch}"
        );
    }

    #[test]
    fn val_and_test_truth_is_noise_free_and_deterministic() {
        let mut spec = small_spec();
        spec.truth_noise = 0.5;
        let s = generate(&spec, 11);
        for i in 0..s.val.len() {
            assert!(s.val.is_clean(i));
            assert!(s.val.label(i).is_deterministic());
        }
    }

    #[test]
    fn streamed_store_matches_in_memory_generation_bit_for_bit() {
        use chef_model::DatasetStore;
        let spec = small_spec();
        let seed = 13;
        let dir = std::env::temp_dir().join(format!("chef-gen-store-{}", std::process::id()));
        let (manifest, val, test) = generate_train_store(&spec, seed, &dir, 64).unwrap();
        assert_eq!(manifest.n, spec.train);
        let split = generate(&spec, seed);
        let store = crate::store::MmapStore::open(&dir).unwrap();
        for i in 0..spec.train {
            assert_eq!(store.feature(i), split.train.feature(i), "row {i}");
            assert_eq!(store.label(i).probs(), split.train.label(i).probs());
            assert_eq!(store.ground_truth(i), split.train.ground_truth(i));
        }
        assert_eq!(val.feature(0), split.val.feature(0));
        assert_eq!(test.feature(0), split.test.feature(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn whole_paper_suite_generates() {
        for spec in paper_suite(200) {
            let s = generate(&spec, 1);
            assert!(s.train.len() >= 30, "{}", spec.name);
            assert_eq!(s.train.num_classes(), 2);
        }
    }

    use chef_linalg::vector;
}
