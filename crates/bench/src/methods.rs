//! The method axis of the experiment grids: every column that appears in
//! the paper's tables, mapped to a (selector, label strategy, model
//! constructor) triple.

use chef_baselines::{
    ActiveEntropy, ActiveLeastConfidence, Duti, InflD, InflY, RandomSelector, Tars, O2U,
};
use chef_core::{ConstructorKind, InflSelector, LabelStrategy, SampleSelector};
use chef_train::DeltaGradConfig;

/// One method column of a results table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Infl ranking + 3 human annotators.
    InflOne,
    /// Infl ranking + Infl's suggested label alone.
    InflTwo,
    /// Infl ranking + suggestion + 2 human annotators.
    InflThree,
    /// Infl (two) with the DeltaGrad-L model constructor (the
    /// "Infl (two) + DeltaGrad" column of Table 1).
    InflTwoDeltaGrad,
    /// Koh–Liang deletion influence (Eq. 2) + 3 annotators.
    InflD,
    /// Zhang et al. label influence (Eq. 7) + 3 annotators.
    InflY,
    /// Least-confidence active learning + 3 annotators.
    ActiveOne,
    /// Entropy active learning + 3 annotators.
    ActiveTwo,
    /// O2U noisy-sample detection + 3 annotators.
    O2u,
    /// TARS oracle-based cleaning + 3 annotators.
    Tars,
    /// DUTI bi-level debugging (suggestions used alone, like Infl (two)).
    Duti,
    /// Uniform-random selection + 3 annotators.
    Random,
}

impl Method {
    /// The column header used in the paper.
    pub fn paper_name(&self) -> &'static str {
        match self {
            Method::InflOne => "Infl (one)",
            Method::InflTwo => "Infl (two)",
            Method::InflThree => "Infl (three)",
            Method::InflTwoDeltaGrad => "Infl (two) + DeltaGrad",
            Method::InflD => "Infl-D",
            Method::InflY => "Infl-Y",
            Method::ActiveOne => "Active (one)",
            Method::ActiveTwo => "Active (two)",
            Method::O2u => "O2U",
            Method::Tars => "TARS",
            Method::Duti => "DUTI",
            Method::Random => "Random",
        }
    }

    /// The label-cleaning strategy the annotation phase should use.
    pub fn strategy(&self) -> LabelStrategy {
        match self {
            Method::InflTwo | Method::InflTwoDeltaGrad | Method::Duti => {
                LabelStrategy::SuggestionOnly
            }
            Method::InflThree => LabelStrategy::SuggestionPlusHumans(2),
            _ => LabelStrategy::HumansOnly(3),
        }
    }

    /// The model constructor the method prescribes.
    pub fn constructor(&self) -> ConstructorKind {
        match self {
            Method::InflTwoDeltaGrad => ConstructorKind::DeltaGradL(DeltaGradConfig::default()),
            _ => ConstructorKind::Retrain,
        }
    }

    /// The columns of the main-text Table 1 at `b = 100`.
    pub fn table1_b100() -> Vec<Method> {
        vec![
            Method::InflOne,
            Method::InflTwo,
            Method::InflThree,
            Method::InflD,
            Method::ActiveOne,
            Method::ActiveTwo,
            Method::O2u,
        ]
    }

    /// The columns of the main-text Table 1 at `b = 10`.
    pub fn table1_b10() -> Vec<Method> {
        vec![
            Method::InflOne,
            Method::InflTwo,
            Method::InflTwoDeltaGrad,
            Method::InflThree,
        ]
    }
}

/// Instantiate the selector behind a method (fresh state per run).
///
/// `neural` adds Tikhonov damping to every conjugate-gradient solve — the
/// MLP's Hessian is not positive definite, so the undamped `H⁻¹v` products
/// the influence selectors need would be ill-posed (standard
/// influence-function practice for deep models).
pub fn make_selector(method: Method, seed: u64, neural: bool) -> Box<dyn SampleSelector> {
    let cfg = if neural {
        let mut c = chef_core::InflConfig::default();
        c.cg.damping = 0.1;
        c.cg.max_iters = 50;
        c
    } else {
        chef_core::InflConfig::default()
    };
    match method {
        Method::InflOne | Method::InflTwo | Method::InflThree | Method::InflTwoDeltaGrad => {
            // Increm-Infl requires the strong-convexity assumption (§3.2),
            // so the neural path falls back to Full evaluation — and its
            // provenance precompute (per-sample Hessian norms) would be
            // prohibitive with finite-difference HVPs anyway.
            let mut s = if neural {
                InflSelector::full()
            } else {
                InflSelector::incremental()
            };
            s.cfg = cfg;
            Box::new(s)
        }
        Method::InflD => Box::new(InflD { cfg }),
        Method::InflY => Box::new(InflY { cfg }),
        Method::ActiveOne => Box::new(ActiveLeastConfidence),
        Method::ActiveTwo => Box::new(ActiveEntropy),
        Method::O2u => Box::new(O2U::default()),
        Method::Tars => Box::new(Tars { cfg }),
        Method::Duti => {
            let mut d = Duti::default();
            d.cfg.cg = cfg;
            Box::new(d)
        }
        Method::Random => Box::new(RandomSelector::new(seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_match_paper_definitions() {
        assert_eq!(Method::InflOne.strategy(), LabelStrategy::HumansOnly(3));
        assert_eq!(Method::InflTwo.strategy(), LabelStrategy::SuggestionOnly);
        assert_eq!(
            Method::InflThree.strategy(),
            LabelStrategy::SuggestionPlusHumans(2)
        );
        assert_eq!(Method::InflD.strategy(), LabelStrategy::HumansOnly(3));
    }

    #[test]
    fn only_infl_two_deltagrad_switches_constructor() {
        for m in [
            Method::InflOne,
            Method::InflTwo,
            Method::InflD,
            Method::Tars,
        ] {
            assert_eq!(m.constructor(), ConstructorKind::Retrain, "{m:?}");
        }
        assert!(matches!(
            Method::InflTwoDeltaGrad.constructor(),
            ConstructorKind::DeltaGradL(_)
        ));
    }

    #[test]
    fn every_method_builds_a_selector() {
        for m in [
            Method::InflOne,
            Method::InflTwo,
            Method::InflThree,
            Method::InflTwoDeltaGrad,
            Method::InflD,
            Method::InflY,
            Method::ActiveOne,
            Method::ActiveTwo,
            Method::O2u,
            Method::Tars,
            Method::Duti,
            Method::Random,
        ] {
            let s = make_selector(m, 1, false);
            assert!(!s.name().is_empty());
        }
    }
}
