//! Table printing and CSV persistence for experiment results.

use chef_linalg::stats::mean_std;
use std::path::PathBuf;

/// Format a `mean±std` cell the way the paper's tables do.
pub fn fmt_mean_std(values: &[f64]) -> String {
    let (m, s) = mean_std(values);
    format!("{m:.4}\u{b1}{s:.4}")
}

/// Format a single value cell.
pub fn fmt_cell(v: f64) -> String {
    format!("{v:.4}")
}

/// Print an aligned text table with a title.
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let print_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("| {} |", line.join(" | "));
    };
    print_row(header);
    let total: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
    println!("{}", "-".repeat(total));
    for row in rows {
        print_row(row);
    }
}

/// The `results/` directory at the workspace root (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("CHEF_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            // Walk up from the crate dir to the workspace root.
            let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            p.pop();
            p.pop();
            p.join("results")
        });
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Write a results CSV into `results/<name>.csv`.
pub fn write_results_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = results_dir().join(format!("{name}.csv"));
    chef_viz::write_csv(&path, header, rows).expect("write results csv");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_formatting() {
        let s = fmt_mean_std(&[0.5, 0.7]);
        assert!(s.starts_with("0.6000"));
        assert!(s.contains('\u{b1}'));
        assert_eq!(fmt_cell(0.12345), "0.1235");
    }

    #[test]
    fn results_dir_exists_after_call() {
        let d = results_dir();
        assert!(d.exists());
        assert!(d.ends_with("results"));
    }

    #[test]
    fn csv_written_to_results() {
        let p = write_results_csv(
            "unit_test_output",
            &["x", "y"],
            &[vec!["1".into(), "2".into()]],
        );
        let text = std::fs::read_to_string(&p).unwrap();
        assert_eq!(text, "x,y\n1,2\n");
        let _ = std::fs::remove_file(p);
    }
}
