//! The experiment grid runner: dataset × method × batch-size × seed cells
//! executed in parallel with rayon.

use crate::methods::{make_selector, Method};
use crate::prep::{default_pipeline_config, PreparedDataset};
use chef_core::{AnnotationConfig, Pipeline, PipelineConfig, PipelineReport, Telemetry};
use chef_model::{LogisticRegression, Mlp, Model, WeightedObjective};
use rayon::prelude::*;

/// One cell of an experiment grid.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Dataset name (for reporting).
    pub dataset: String,
    /// Method column.
    pub method: Method,
    /// Per-round batch `b`.
    pub b: usize,
    /// Total budget `B`.
    pub budget: usize,
    /// γ on uncleaned samples.
    pub gamma: f64,
    /// Seed of this repetition.
    pub seed: u64,
    /// Use the MLP (Appendix G.2) instead of logistic regression.
    pub neural: bool,
}

/// The measured outcome of a cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell it belongs to.
    pub cell: Cell,
    /// Test F1 of the uncleaned model.
    pub uncleaned_f1: f64,
    /// Test F1 after cleaning.
    pub cleaned_f1: f64,
    /// Full pipeline report (timings, rounds).
    pub report: PipelineReport,
    /// Exported telemetry.v1 document for this cell (None when the
    /// `telemetry` feature is off).
    pub telemetry_json: Option<String>,
}

/// Build the pipeline configuration of a cell.
pub fn cell_config(prepared: &PreparedDataset, cell: &Cell) -> PipelineConfig {
    let mut cfg = default_pipeline_config(prepared.split.train.len(), cell.seed);
    cfg.budget = cell.budget;
    cfg.round_size = cell.b;
    cfg.objective = WeightedObjective::new(cell.gamma, cfg.objective.l2);
    cfg.constructor = cell.method.constructor();
    cfg.annotation = AnnotationConfig {
        strategy: cell.method.strategy(),
        // Expert-grade annotators for the medical datasets, raw crowd
        // workers for the crowdsourced ones (see DatasetSpec docs).
        error_rate: prepared.spec.annotator_error,
        seed: cell.seed ^ 0x77,
    };
    if cell.neural {
        // Non-convex path: gentler steps. Cold restarts keep every round
        // comparable; warm starts were tried and accumulate
        // noise-memorization round over round on the random-label
        // datasets (F1 collapse), so they stay off.
        cfg.sgd.lr = 0.05;
        cfg.sgd.epochs = 20;
    }
    cfg
}

/// Run one cell on an already-prepared dataset.
///
/// Every cell runs with its own enabled [`Telemetry`] handle (cells run
/// concurrently, so a shared registry would interleave rounds), and the
/// exported document rides along on the result.
pub fn run_cell(prepared: &PreparedDataset, cell: &Cell) -> CellResult {
    let mut cfg = cell_config(prepared, cell);
    let telemetry = Telemetry::enabled();
    cfg.telemetry = telemetry.clone();
    let pipeline = Pipeline::new(cfg);
    let mut selector = make_selector(cell.method, cell.seed, cell.neural);
    let report = if cell.neural {
        let model = Mlp::new(
            prepared.split.train.dim(),
            16,
            prepared.split.train.num_classes(),
        );
        run_with_model(&model, &pipeline, prepared, selector.as_mut())
    } else {
        let model = LogisticRegression::new(
            prepared.split.train.dim(),
            prepared.split.train.num_classes(),
        );
        run_with_model(&model, &pipeline, prepared, selector.as_mut())
    };
    CellResult {
        cell: cell.clone(),
        uncleaned_f1: report.initial_test_f1,
        cleaned_f1: report.final_test_f1(),
        report,
        telemetry_json: telemetry.export_json("bench.cell"),
    }
}

fn run_with_model(
    model: &dyn Model,
    pipeline: &Pipeline,
    prepared: &PreparedDataset,
    selector: &mut dyn chef_core::SampleSelector,
) -> PipelineReport {
    pipeline.run(
        model,
        prepared.split.train.clone(),
        &prepared.split.val,
        &prepared.split.test,
        selector,
    )
}

/// Run many cells in parallel. `prepare` maps `(dataset, seed)` to the
/// prepared data (called once per unique pair, results shared).
pub fn run_grid<F>(cells: Vec<Cell>, prepare: F) -> Vec<CellResult>
where
    F: Fn(&str, u64) -> PreparedDataset + Sync,
{
    cells
        .par_iter()
        .map(|cell| {
            let prepared = prepare(&cell.dataset, cell.seed);
            run_cell(&prepared, cell)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::prepare;
    use chef_data::paper_suite;

    fn tiny_cell(method: Method, b: usize) -> (PreparedDataset, Cell) {
        let spec = paper_suite(400)
            .into_iter()
            .find(|s| s.name == "Twitter")
            .unwrap();
        let prepared = prepare(&spec, 5);
        let cell = Cell {
            dataset: "Twitter".into(),
            method,
            b,
            budget: 10,
            gamma: 0.8,
            seed: 5,
            neural: false,
        };
        (prepared, cell)
    }

    #[test]
    fn run_cell_produces_f1_in_range() {
        let (prepared, cell) = tiny_cell(Method::InflTwo, 5);
        let r = run_cell(&prepared, &cell);
        assert!((0.0..=1.0).contains(&r.uncleaned_f1));
        assert!((0.0..=1.0).contains(&r.cleaned_f1));
        assert_eq!(r.report.rounds.len(), 2);
        #[cfg(feature = "telemetry")]
        {
            let json = r.telemetry_json.as_deref().expect("telemetry export");
            assert!(json.contains("\"schema\":\"telemetry.v1\""));
            assert!(json.contains("\"kind\":\"bench.cell\""));
        }
        #[cfg(not(feature = "telemetry"))]
        assert!(r.telemetry_json.is_none());
    }

    #[test]
    fn neural_cell_runs() {
        let (prepared, mut cell) = tiny_cell(Method::InflOne, 10);
        cell.neural = true;
        let r = run_cell(&prepared, &cell);
        assert!((0.0..=1.0).contains(&r.cleaned_f1));
    }

    #[test]
    fn grid_runs_in_parallel_and_preserves_cells() {
        let cells: Vec<Cell> = [Method::InflTwo, Method::Random]
            .into_iter()
            .map(|m| Cell {
                dataset: "Twitter".into(),
                method: m,
                b: 5,
                budget: 5,
                gamma: 0.8,
                seed: 1,
                neural: false,
            })
            .collect();
        let results = run_grid(cells.clone(), |name, seed| {
            let spec = paper_suite(400)
                .into_iter()
                .find(|s| s.name == name)
                .unwrap();
            prepare(&spec, seed)
        });
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].cell.method, cells[0].method);
        assert_eq!(results[1].cell.method, cells[1].method);
    }
}
