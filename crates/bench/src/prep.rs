//! Dataset preparation and default pipeline configuration.

use chef_core::{AnnotationConfig, ConstructorKind, LabelStrategy, PipelineConfig};
use chef_data::{generate, DatasetSpec, Split};
use chef_model::WeightedObjective;
use chef_train::SgdConfig;
use chef_weak::{weaken_split, WeakenConfig};

/// A weakly-labeled dataset ready for the pipeline.
#[derive(Debug, Clone)]
pub struct PreparedDataset {
    /// The spec it was generated from.
    pub spec: DatasetSpec,
    /// Weakly-labeled training set + trusted val/test.
    pub split: Split,
}

/// Generate and weaken one dataset deterministically.
pub fn prepare(spec: &DatasetSpec, seed: u64) -> PreparedDataset {
    let mut split = generate(spec, seed);
    weaken_split(
        &mut split,
        spec,
        &WeakenConfig {
            seed: seed ^ 0xabcd,
            ..WeakenConfig::default()
        },
    );
    PreparedDataset {
        spec: spec.clone(),
        split,
    }
}

/// Like [`prepare`], but with every probabilistic training label rounded
/// to its nearest deterministic label (still weight γ) — the paper's
/// setup for the TARS comparison (Appendix G.3).
pub fn prepare_rounded(spec: &DatasetSpec, seed: u64) -> PreparedDataset {
    let mut p = prepare(spec, seed);
    let train = &mut p.split.train;
    for i in 0..train.len() {
        if !train.is_clean(i) {
            let rounded = train.label(i).rounded();
            train.set_label(i, rounded);
        }
    }
    p
}

/// The default pipeline configuration used across experiments
/// (γ = 0.8, λ = 0.2, SGD epochs/batch mirroring §5.1 at reduced scale).
pub fn default_pipeline_config(n_train: usize, seed: u64) -> PipelineConfig {
    PipelineConfig {
        budget: 100,
        round_size: 10,
        objective: WeightedObjective::new(0.8, 0.2),
        sgd: SgdConfig {
            lr: 0.1,
            epochs: 25,
            // Paper uses minibatch 2000 on full-size data; scale with n.
            batch_size: (n_train / 16).clamp(32, 512),
            seed,
            cache_provenance: true,
        },
        constructor: ConstructorKind::Retrain,
        annotation: AnnotationConfig {
            strategy: LabelStrategy::HumansOnly(3),
            error_rate: 0.05,
            seed: seed ^ 0x77,
        },
        ..PipelineConfig::default()
    }
}

/// Parse `--flag value` style arguments with a default.
pub fn arg_value<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_data::paper_suite;

    #[test]
    fn prepare_produces_uncleaned_training_set() {
        let spec = &paper_suite(400)[0];
        let p = prepare(spec, 1);
        assert_eq!(p.split.train.uncleaned_indices().len(), p.split.train.len());
        assert!(p.split.val.len() >= 15);
    }

    #[test]
    fn rounded_labels_are_deterministic_but_uncleaned() {
        let spec = paper_suite(400)
            .into_iter()
            .find(|s| s.name == "Fashion")
            .unwrap();
        let p = prepare_rounded(&spec, 2);
        for i in 0..p.split.train.len() {
            assert!(p.split.train.label(i).is_deterministic());
            assert!(!p.split.train.is_clean(i));
        }
    }

    #[test]
    fn config_scales_batch_with_n() {
        let a = default_pipeline_config(400, 1);
        let b = default_pipeline_config(10_000, 1);
        assert!(a.sgd.batch_size <= b.sgd.batch_size);
        assert!(a.sgd.batch_size >= 32);
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--scale", "40", "--seeds", "5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--scale", 20usize), 40);
        assert_eq!(arg_value(&args, "--seeds", 3usize), 5);
        assert_eq!(arg_value(&args, "--missing", 7usize), 7);
    }
}
