//! # chef-bench
//!
//! The experiment harness that regenerates **every table and figure** of
//! the CHEF paper's evaluation (§5 and Appendix G) on the synthetic
//! substrate. One binary per experiment:
//!
//! | binary      | reproduces                                  |
//! |-------------|---------------------------------------------|
//! | `exp1`      | Tables 1, 5, 6 (Exp1: F1 after cleaning)    |
//! | `exp2`      | Table 2 (Exp2: Increm-Infl vs Full timing)  |
//! | `exp3`      | Figure 2 (Exp3: DeltaGrad-L vs Retrain)     |
//! | `exp_cnn`   | Table 7 (Appendix G.2, neural model)        |
//! | `exp_tars`  | Tables 8–9 (Appendix G.3, vs TARS)          |
//! | `exp_gamma` | Tables 10–13 (Appendix G.4, γ ∈ {0, 1})     |
//! | `exp_batch` | Table 14 (Appendix G.5, batch-size sweep)   |
//! | `figure3`   | Figure 3 (t-SNE of val/test + sample S)     |
//!
//! Every binary prints paper-style rows and writes CSV into `results/`.
//! Use `--scale N` to change the dataset down-scaling factor (default 5,
//! i.e. 1/5 of the paper's Table 3 sizes) and `--seeds K` for the number
//! of repetitions behind each `mean±std` cell.

pub mod grid;
pub mod methods;
pub mod prep;
pub mod report;
pub mod sweep;

pub use grid::{cell_config, run_cell, run_grid, Cell, CellResult};
pub use methods::{make_selector, Method};
pub use prep::{arg_value, default_pipeline_config, prepare, prepare_rounded, PreparedDataset};
pub use report::{fmt_cell, fmt_mean_std, print_table, results_dir, write_results_csv};
