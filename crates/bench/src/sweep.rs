//! Subprocess thread-scaling sweep shared by the kernel bench binaries.
//!
//! The rayon shim sizes its pool from `RAYON_NUM_THREADS` exactly once
//! (on first use, through a `OnceLock`), so one process cannot time the
//! same kernel at several pool sizes. The sweep re-execs the current
//! binary once per thread count instead:
//!
//! * the parent parses `--threads a,b,c` (default [`DEFAULT_THREADS`],
//!   capped to the machine's core count with the dropped counts recorded
//!   as skipped; an explicit `--threads` list is honored verbatim and
//!   merely flagged `oversubscribed` past the core count),
//! * each child runs with `RAYON_NUM_THREADS=<t>` plus the sentinel
//!   [`CHILD_FLAG`], measures, and prints its kind-specific results
//!   payload on a single [`RESULT_MARKER`] line via
//!   [`emit_child_result`],
//! * the parent forwards every other child line (prefixed `[t=N]`),
//!   collects the fragments, and embeds them verbatim in the BENCH
//!   document with [`chef_obs::JsonWriter::raw`].
//!
//! The BENCH document keeps its pre-sweep shape for the one-thread run
//! (the [`baseline`] fragment fills the legacy top-level payload) and
//! adds a `thread_sweep` array with one entry per requested count — see
//! DESIGN.md §10.

use chef_obs::JsonWriter;
use std::process::{Command, Stdio};

/// Sentinel argument marking a re-exec'd measurement child.
pub const CHILD_FLAG: &str = "--_sweep-child";

/// Prefix of the one stdout line carrying a child's JSON fragment.
pub const RESULT_MARKER: &str = "@@SWEEP_RESULT ";

/// Thread counts swept when `--threads` is not given (capped to the
/// machine's core count; the skipped tail is recorded, not silently
/// dropped).
pub const DEFAULT_THREADS: [usize; 4] = [1, 2, 4, 8];

/// One requested thread count: either a completed child run (with its
/// JSON fragment) or a skipped entry explaining why it did not run.
pub struct SweepEntry {
    pub threads: usize,
    pub skipped: bool,
    /// Why the count was skipped; empty for ran entries.
    pub reason: String,
    /// Ran with more threads than cores (explicit `--threads` only).
    pub oversubscribed: bool,
    /// The child's `RESULT_MARKER` payload; empty for skipped entries.
    pub fragment: String,
}

/// Is this process a re-exec'd measurement child?
pub fn is_child(args: &[String]) -> bool {
    args.iter().any(|a| a == CHILD_FLAG)
}

/// Print `fragment` on the marker line the parent scans for. The
/// fragment must be a complete single-line JSON value.
pub fn emit_child_result(fragment: &str) {
    assert!(
        !fragment.contains('\n'),
        "sweep fragment must be a single line"
    );
    println!("{RESULT_MARKER}{fragment}");
}

/// The machine's core count (1 when it cannot be determined).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1)
}

/// Parse `--threads a,b,c` into a deduplicated list, or fall back to
/// [`DEFAULT_THREADS`]. Returns `(counts, explicit)`.
pub fn requested_threads(args: &[String]) -> (Vec<usize>, bool) {
    let list = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1));
    match list {
        Some(list) => {
            let mut out = Vec::new();
            for part in list.split(',') {
                let t: usize = part
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("--threads: bad thread count {part:?}"));
                assert!(t >= 1, "--threads: thread count must be >= 1");
                if !out.contains(&t) {
                    out.push(t);
                }
            }
            assert!(!out.is_empty(), "--threads: empty list");
            (out, true)
        }
        None => (DEFAULT_THREADS.to_vec(), false),
    }
}

/// Run the sweep: one re-exec'd child per requested thread count, in
/// order. Every original argument is passed through (children ignore
/// `--threads`), plus [`CHILD_FLAG`]; `RAYON_NUM_THREADS` pins each
/// child's pool. Panics if a child fails or emits no marker line — a
/// broken sweep must not write a plausible-looking BENCH file.
pub fn run(args: &[String]) -> Vec<SweepEntry> {
    let cores = available_cores();
    let (threads, explicit) = requested_threads(args);
    let exe = std::env::current_exe().expect("sweep: current_exe");
    let mut entries = Vec::new();
    for t in threads {
        if !explicit && t > cores {
            println!(
                "sweep: skipping t={t} (only {cores} core(s) available; pass --threads to force)"
            );
            entries.push(SweepEntry {
                threads: t,
                skipped: true,
                reason: format!("exceeds available_cores={cores}"),
                oversubscribed: false,
                fragment: String::new(),
            });
            continue;
        }
        let oversubscribed = t > cores;
        if oversubscribed {
            println!("sweep: t={t} exceeds {cores} core(s) — timings are oversubscribed");
        }
        let out = Command::new(&exe)
            .args(args.iter().skip(1))
            .arg(CHILD_FLAG)
            .env("RAYON_NUM_THREADS", t.to_string())
            .stderr(Stdio::inherit())
            .output()
            .expect("sweep: spawn child");
        assert!(
            out.status.success(),
            "sweep: child at t={t} failed: {}",
            out.status
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        let mut fragment = None;
        for line in stdout.lines() {
            match line.strip_prefix(RESULT_MARKER) {
                Some(f) => fragment = Some(f.to_string()),
                None => println!("[t={t}] {line}"),
            }
        }
        let fragment =
            fragment.unwrap_or_else(|| panic!("sweep: child at t={t} emitted no result marker"));
        entries.push(SweepEntry {
            threads: t,
            skipped: false,
            reason: String::new(),
            oversubscribed,
            fragment,
        });
    }
    assert!(
        entries.iter().any(|e| !e.skipped),
        "sweep: no thread count ran"
    );
    entries
}

/// The entry whose fragment fills the legacy top-level payload: the
/// one-thread run when present, else the first completed run.
pub fn baseline(entries: &[SweepEntry]) -> &SweepEntry {
    entries
        .iter()
        .find(|e| e.threads == 1 && !e.skipped)
        .or_else(|| entries.iter().find(|e| !e.skipped))
        .expect("sweep: no completed entry")
}

/// Append the sweep's `context` fields: `threads_swept` (counts that
/// ran) and `threads_skipped` (`{threads, reason}` for the rest). The
/// writer must be inside the open `context` object.
pub fn write_context_fields(w: &mut JsonWriter, entries: &[SweepEntry]) {
    w.key("threads_swept");
    w.begin_array();
    for e in entries.iter().filter(|e| !e.skipped) {
        w.u64(e.threads as u64);
    }
    w.end_array();
    w.key("threads_skipped");
    w.begin_array();
    for e in entries.iter().filter(|e| e.skipped) {
        w.begin_object();
        w.field_u64("threads", e.threads as u64);
        w.field_str("reason", &e.reason);
        w.end_object();
    }
    w.end_array();
}

/// Append the `thread_sweep` array: per ran entry
/// `{threads[, oversubscribed], <results_key>: <fragment>}`, per skipped
/// entry `{threads, skipped, reason}`. `project` maps a child fragment
/// to the JSON embedded for that entry (identity for most binaries;
/// `train_kernels` projects out the thread-sensitive `grad` section).
pub fn write_thread_sweep<F: Fn(&str) -> String>(
    w: &mut JsonWriter,
    entries: &[SweepEntry],
    results_key: &str,
    project: F,
) {
    w.key("thread_sweep");
    w.begin_array();
    for e in entries {
        w.begin_object();
        w.field_u64("threads", e.threads as u64);
        if e.skipped {
            w.field_bool("skipped", true);
            w.field_str("reason", &e.reason);
        } else {
            if e.oversubscribed {
                w.field_bool("oversubscribed", true);
            }
            w.key(results_key);
            w.raw(&project(&e.fragment));
        }
        w.end_object();
    }
    w.end_array();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(tail: &[&str]) -> Vec<String> {
        std::iter::once("bench".to_string())
            .chain(tail.iter().map(|s| s.to_string()))
            .collect()
    }

    #[test]
    fn default_threads_when_flag_absent() {
        let (threads, explicit) = requested_threads(&argv(&["--reps", "3"]));
        assert_eq!(threads, DEFAULT_THREADS.to_vec());
        assert!(!explicit);
    }

    #[test]
    fn explicit_threads_parse_and_dedupe_in_order() {
        let (threads, explicit) = requested_threads(&argv(&["--threads", "4, 1,4,2"]));
        assert_eq!(threads, vec![4, 1, 2]);
        assert!(explicit);
    }

    #[test]
    #[should_panic(expected = "bad thread count")]
    fn non_numeric_thread_count_panics() {
        requested_threads(&argv(&["--threads", "1,two"]));
    }

    #[test]
    fn child_flag_is_detected() {
        assert!(is_child(&argv(&["--quick", CHILD_FLAG])));
        assert!(!is_child(&argv(&["--quick"])));
    }

    fn entry(threads: usize, fragment: &str) -> SweepEntry {
        SweepEntry {
            threads,
            skipped: false,
            reason: String::new(),
            oversubscribed: false,
            fragment: fragment.to_string(),
        }
    }

    fn skipped(threads: usize, reason: &str) -> SweepEntry {
        SweepEntry {
            threads,
            skipped: true,
            reason: reason.to_string(),
            oversubscribed: false,
            fragment: String::new(),
        }
    }

    #[test]
    fn baseline_prefers_one_thread_then_first_ran() {
        let entries = vec![skipped(1, "x"), entry(2, "[2]"), entry(4, "[4]")];
        assert_eq!(baseline(&entries).fragment, "[2]");
        let entries = vec![entry(2, "[2]"), entry(1, "[1]")];
        assert_eq!(baseline(&entries).fragment, "[1]");
    }

    #[test]
    fn context_and_sweep_sections_serialize_as_documented() {
        let mut entries = vec![
            entry(1, r#"[{"n":10}]"#),
            skipped(8, "exceeds available_cores=1"),
        ];
        entries[0].oversubscribed = false;
        let mut w = JsonWriter::new();
        w.begin_object();
        write_context_fields(&mut w, &entries);
        write_thread_sweep(&mut w, &entries, "results", |f| f.to_string());
        w.end_object();
        assert_eq!(
            w.finish(),
            concat!(
                r#"{"threads_swept":[1],"#,
                r#""threads_skipped":[{"threads":8,"reason":"exceeds available_cores=1"}],"#,
                r#""thread_sweep":[{"threads":1,"results":[{"n":10}]},"#,
                r#"{"threads":8,"skipped":true,"reason":"exceeds available_cores=1"}]}"#
            )
        );
    }

    #[test]
    fn oversubscribed_entries_are_flagged_and_projected() {
        let mut e = entry(4, r#"{"grad":[1,2],"cg":{}}"#);
        e.oversubscribed = true;
        let mut w = JsonWriter::new();
        w.begin_object();
        write_thread_sweep(&mut w, &[e], "grad", |f| {
            chef_obs::parse_json(f)
                .unwrap()
                .get("grad")
                .unwrap()
                .to_json()
        });
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"thread_sweep":[{"threads":4,"oversubscribed":true,"grad":[1,2]}]}"#
        );
    }

    #[test]
    fn emitted_fragment_line_round_trips_through_the_marker() {
        let line = format!("{RESULT_MARKER}{}", r#"[{"n":1}]"#);
        assert_eq!(line.strip_prefix(RESULT_MARKER), Some(r#"[{"n":1}]"#));
    }
}
