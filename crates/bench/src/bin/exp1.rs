//! **Exp1** — Tables 1, 5 and 6 of the CHEF paper.
//!
//! Model prediction performance (test F1) after cleaning `B = 100`
//! training samples with Infl (one)/(two)/(three) and the baselines
//! Infl-D, Active (one)/(two), O2U, for per-round batches `b ∈ {100, 10}`
//! at γ = 0.8. The `b = 10` block also includes the
//! "Infl (two) + DeltaGrad" column of Table 1. Cells are `mean±std` over
//! `--seeds` repetitions (Tables 5/6 are exactly these error-bar views).
//!
//! ```text
//! cargo run --release -p chef-bench --bin exp1 [--scale 5] [--seeds 3]
//! ```

use chef_bench::prep::arg_value;
use chef_bench::{fmt_mean_std, prepare, print_table, run_grid, write_results_csv, Cell, Method};
use chef_data::paper_suite;
use std::collections::HashMap;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg_value(&args, "--scale", 5usize);
    let seeds = arg_value(&args, "--seeds", 3u64);
    let budget = arg_value(&args, "--budget", 100usize);
    let gamma = arg_value(&args, "--gamma", 0.8f64);
    let suite = paper_suite(scale);

    let mut cells = Vec::new();
    for spec in &suite {
        for seed in 0..seeds {
            for m in Method::table1_b100() {
                cells.push(Cell {
                    dataset: spec.name.to_string(),
                    method: m,
                    b: budget,
                    budget,
                    gamma,
                    seed,
                    neural: false,
                });
            }
            for m in Method::table1_b10() {
                cells.push(Cell {
                    dataset: spec.name.to_string(),
                    method: m,
                    b: 10,
                    budget,
                    gamma,
                    seed,
                    neural: false,
                });
            }
        }
    }
    eprintln!(
        "exp1: {} cells (scale 1/{scale}, {seeds} seeds, B={budget}, gamma={gamma})",
        cells.len()
    );

    let results = run_grid(cells, |name, seed| {
        let spec = suite.iter().find(|s| s.name == name).unwrap();
        prepare(spec, seed)
    });

    // Aggregate: (dataset, method, b) → Vec<f1>; uncleaned per dataset.
    let mut grid: HashMap<(String, Method, usize), Vec<f64>> = HashMap::new();
    let mut uncleaned: HashMap<String, Vec<f64>> = HashMap::new();
    for r in &results {
        grid.entry((r.cell.dataset.clone(), r.cell.method, r.cell.b))
            .or_default()
            .push(r.cleaned_f1);
        uncleaned
            .entry(r.cell.dataset.clone())
            .or_default()
            .push(r.uncleaned_f1);
    }

    let cell_of = |d: &str, m: Method, b: usize| {
        grid.get(&(d.to_string(), m, b))
            .map(|v| fmt_mean_std(v))
            .unwrap_or_else(|| "-".into())
    };

    for (b, methods, title) in [
        (
            budget,
            Method::table1_b100(),
            format!("Table 1/5 — F1 after cleaning {budget} samples (b={budget}, gamma={gamma})"),
        ),
        (
            10,
            Method::table1_b10(),
            format!("Table 1/6 — F1 after cleaning {budget} samples (b=10, gamma={gamma})"),
        ),
    ] {
        let mut header = vec!["dataset".to_string(), "uncleaned".to_string()];
        header.extend(methods.iter().map(|m| m.paper_name().to_string()));
        let mut rows = Vec::new();
        let mut csv_rows = Vec::new();
        for spec in &suite {
            let mut row = vec![spec.name.to_string(), fmt_mean_std(&uncleaned[spec.name])];
            for m in &methods {
                row.push(cell_of(spec.name, *m, b));
            }
            csv_rows.push(row.clone());
            rows.push(row);
        }
        print_table(&title, &header, &rows);
        let name = if b == 10 { "table1_b10" } else { "table1_b100" };
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let path = write_results_csv(name, &header_refs, &csv_rows);
        eprintln!("wrote {}", path.display());
    }
}
