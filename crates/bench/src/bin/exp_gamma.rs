//! **Appendix G.4** — Tables 10–13 of the CHEF paper.
//!
//! Exp1 repeated with the uncleaned-sample weight γ at its extremes:
//!
//! * `γ = 1` (Tables 10–11): all samples equally weighted. This is the
//!   only regime where the paper can run **DUTI** (whose bi-level
//!   program has no re-weighting notion) and where **Infl-Y** (Eq. 7) is
//!   best-cased, since Infl's `(1 − γ)` term vanishes and only the
//!   `δ_y` magnitude separates them.
//! * `γ = 0` (Tables 12–13): uncleaned samples excluded from training —
//!   the regime where the paper itself reports Infl degrading on
//!   MIMIC/Retina because cleaning 100 samples violates the
//!   small-budget assumption relative to the tiny effective training set.
//!
//! ```text
//! cargo run --release -p chef-bench --bin exp_gamma --gamma 1 [--scale 5]
//! cargo run --release -p chef-bench --bin exp_gamma --gamma 0 [--scale 5]
//! ```

use chef_bench::prep::arg_value;
use chef_bench::{fmt_mean_std, prepare, print_table, run_grid, write_results_csv, Cell, Method};
use chef_data::paper_suite;
use std::collections::HashMap;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg_value(&args, "--scale", 5usize);
    let seeds = arg_value(&args, "--seeds", 3u64);
    let budget = arg_value(&args, "--budget", 100usize);
    let gamma = arg_value(&args, "--gamma", 1.0f64);
    assert!(
        gamma == 0.0 || gamma == 1.0,
        "exp_gamma reproduces the γ ∈ {{0, 1}} appendix tables"
    );
    let suite = paper_suite(scale);

    // γ = 1 adds Infl-Y everywhere and DUTI at b = 100 (Table 10); the
    // γ = 0 tables drop both.
    let mut methods_b100: Vec<Method> = vec![
        Method::InflD,
        Method::ActiveOne,
        Method::ActiveTwo,
        Method::O2u,
        Method::InflOne,
        Method::InflTwo,
        Method::InflThree,
    ];
    let mut methods_b10 = methods_b100.clone();
    if gamma == 1.0 {
        methods_b100.insert(1, Method::InflY);
        methods_b100.insert(2, Method::Duti);
        methods_b10.insert(1, Method::InflY);
    }

    let mut cells = Vec::new();
    for spec in &suite {
        for seed in 0..seeds {
            for m in &methods_b100 {
                cells.push(Cell {
                    dataset: spec.name.to_string(),
                    method: *m,
                    b: budget,
                    budget,
                    gamma,
                    seed,
                    neural: false,
                });
            }
            for m in &methods_b10 {
                cells.push(Cell {
                    dataset: spec.name.to_string(),
                    method: *m,
                    b: 10,
                    budget,
                    gamma,
                    seed,
                    neural: false,
                });
            }
        }
    }
    eprintln!("exp_gamma: {} cells (gamma={gamma})", cells.len());
    let results = run_grid(cells, |name, seed| {
        let spec = suite.iter().find(|s| s.name == name).unwrap();
        prepare(spec, seed)
    });

    let mut grid: HashMap<(String, Method, usize), Vec<f64>> = HashMap::new();
    let mut uncleaned: HashMap<String, Vec<f64>> = HashMap::new();
    for r in &results {
        grid.entry((r.cell.dataset.clone(), r.cell.method, r.cell.b))
            .or_default()
            .push(r.cleaned_f1);
        uncleaned
            .entry(r.cell.dataset.clone())
            .or_default()
            .push(r.uncleaned_f1);
    }

    let tables = if gamma == 1.0 {
        [(budget, "Table 10"), (10, "Table 11")]
    } else {
        [(budget, "Table 12"), (10, "Table 13")]
    };
    for (b, table) in tables {
        let methods = if b == 10 { &methods_b10 } else { &methods_b100 };
        let mut header = vec!["dataset".to_string(), "uncleaned".to_string()];
        header.extend(methods.iter().map(|m| m.paper_name().to_string()));
        let mut rows = Vec::new();
        for spec in &suite {
            let mut row = vec![spec.name.to_string(), fmt_mean_std(&uncleaned[spec.name])];
            for m in methods {
                row.push(
                    grid.get(&(spec.name.to_string(), *m, b))
                        .map(|v| fmt_mean_std(v))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            rows.push(row);
        }
        print_table(
            &format!("{table} — F1 after cleaning {budget} samples (b={b}, gamma={gamma})"),
            &header,
            &rows,
        );
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let name = match (gamma as i64, b == 10) {
            (1, false) => "table10",
            (1, true) => "table11",
            (_, false) => "table12",
            (_, true) => "table13",
        };
        let path = write_results_csv(name, &header_refs, &rows);
        eprintln!("wrote {}", path.display());
    }
}
