//! Per-sample vs batched (GEMM-backed) influence kernel wall time.
//!
//! Times the Infl scoring pass and the Hessian-subsample HVP at
//! n ∈ {10k, 50k, 200k} training samples, comparing three
//! implementations of each:
//!
//! * `per_sample` — the pre-batching reference: one `C + 1`-gradient
//!   loop per candidate (`rank_infl_with_vector_per_sample`), one
//!   allocating `hvp` call per batch sample;
//! * `batched_serial` — the structure-aware `score_block`/`hvp_block`
//!   closed form on one thread (`*_serial` entry points);
//! * `batched` — the dispatching public API (threaded when the
//!   `parallel` feature is on).
//!
//! Each rayon pool size runs in a re-exec'd child (see
//! `chef_bench::sweep`); the parent assembles `BENCH_infl_kernels.json`
//! at the workspace root as a telemetry.v1 document (see DESIGN.md
//! §10/§11) whose top-level `results` is the one-thread run and whose
//! `thread_sweep` carries the full trajectory. At one thread `batched`
//! ≈ `batched_serial`; the headline `batched_speedup` column
//! (per-sample / batched) comes from arithmetic restructuring — two
//! block GEMMs plus O(C) per sample instead of `C + 1` dense gradient
//! materializations — threads then multiply it.
//!
//! Usage: `cargo run --release -p chef-bench --bin infl_kernels`
//! (`--reps R` for best-of-R timing, `--threads 1,2,4` to pick the
//! sweep, `--quick` for a tiny CI-sized run with no JSON output).

use chef_bench::{prepare, sweep};
use chef_core::influence::{
    influence_vector, rank_infl_with_vector, rank_infl_with_vector_per_sample,
    rank_infl_with_vector_serial, InflConfig,
};
use chef_data::{DatasetKind, DatasetSpec};
use chef_linalg::vector;
use chef_model::{Dataset, LogisticRegression, Model, WeightedObjective};
use chef_obs::JsonWriter;
use chef_train::{train, SgdConfig};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Synthetic MIMIC-like spec with exactly `n` training samples.
fn spec_for(n: usize) -> DatasetSpec {
    DatasetSpec {
        name: "infl_kernels",
        kind: DatasetKind::FullyClean,
        train: n,
        val: 500,
        test: 100,
        dim: 32,
        num_classes: 2,
        class_sep: 1.0,
        positive_rate: 0.45,
        truth_noise: 0.0,
        weak_quality: 0.5,
        annotator_error: 0.05,
    }
}

/// Best-of-`reps` wall time in milliseconds.
fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// The pre-batching HVP accumulation: one allocating per-sample `hvp`
/// plus an axpy per batch member, then objective normalization — what
/// `WeightedObjective::batch_hvp` did before `Model::hvp_block`.
fn per_sample_hvp(
    model: &LogisticRegression,
    obj: &WeightedObjective,
    data: &Dataset,
    batch: &[usize],
    w: &[f64],
    v: &[f64],
    out: &mut [f64],
) {
    out.fill(0.0);
    let mut h = vec![0.0; out.len()];
    for &i in batch {
        model.hvp(w, data.feature(i), data.label(i), v, &mut h);
        vector::axpy(data.weight(i, obj.gamma), &h, out);
    }
    if !batch.is_empty() {
        vector::scale(1.0 / batch.len() as f64, out);
    }
    vector::axpy(obj.l2, v, out);
}

struct Case {
    n: usize,
    score_per_sample_ms: f64,
    score_batched_serial_ms: f64,
    score_batched_ms: f64,
    hvp_per_sample_ms: f64,
    hvp_batched_serial_ms: f64,
    hvp_batched_ms: f64,
}

fn run_case(n: usize, reps: usize) -> Case {
    let prepared = prepare(&spec_for(n), 1);
    let data = &prepared.split.train;
    let val = &prepared.split.val;
    let model = LogisticRegression::new(data.dim(), 2);
    let obj = WeightedObjective::new(0.8, 0.2);
    let sgd = SgdConfig {
        lr: 0.1,
        epochs: 3,
        batch_size: 1024,
        seed: 2,
        cache_provenance: false,
    };
    let w = train(&model, &obj, data, &model.initial_params(0), &sgd).w;
    let v = influence_vector(&model, &obj, data, val, &w, &InflConfig::default());
    let pool = data.uncleaned_indices();
    assert_eq!(pool.len(), n, "entire training set should be uncleaned");

    let score_per_sample_ms = time_ms(reps, || {
        rank_infl_with_vector_per_sample(&model, data, &w, &v, &pool, obj.gamma)
    });
    let score_batched_serial_ms = time_ms(reps, || {
        rank_infl_with_vector_serial(&model, data, &w, &v, &pool, obj.gamma)
    });
    let score_batched_ms = time_ms(reps, || {
        rank_infl_with_vector(&model, data, &w, &v, &pool, obj.gamma)
    });

    // HVP over the default Hessian subsample size (the CG operator's
    // per-iteration cost).
    let batch: Vec<usize> = (0..n.min(InflConfig::default().hessian_batch)).collect();
    let mut out = vec![0.0; Model::num_params(&model)];
    let hvp_per_sample_ms = time_ms(reps, || {
        per_sample_hvp(&model, &obj, data, &batch, &w, &v, &mut out);
        out[0]
    });
    let hvp_batched_serial_ms = time_ms(reps, || {
        obj.batch_hvp_serial(&model, data, &batch, &w, &v, &mut out);
        out[0]
    });
    let hvp_batched_ms = time_ms(reps, || {
        obj.batch_hvp(&model, data, &batch, &w, &v, &mut out);
        out[0]
    });
    Case {
        n,
        score_per_sample_ms,
        score_batched_serial_ms,
        score_batched_ms,
        hvp_per_sample_ms,
        hvp_batched_serial_ms,
        hvp_batched_ms,
    }
}

/// Measure all sizes at the current pool size, printing paper-style rows.
fn measure(sizes: &[usize], reps: usize) -> Vec<Case> {
    let mut cases = Vec::new();
    for &n in sizes {
        let c = run_case(n, reps);
        println!(
            "n={:>7}  score: per-sample {:.2} ms / batched-serial {:.2} ms / batched {:.2} ms ({:.2}x)   hvp: per-sample {:.2} ms / batched-serial {:.2} ms / batched {:.2} ms ({:.2}x)",
            c.n,
            c.score_per_sample_ms,
            c.score_batched_serial_ms,
            c.score_batched_ms,
            c.score_per_sample_ms / c.score_batched_ms,
            c.hvp_per_sample_ms,
            c.hvp_batched_serial_ms,
            c.hvp_batched_ms,
            c.hvp_per_sample_ms / c.hvp_batched_ms,
        );
        cases.push(c);
    }
    cases
}

/// The per-thread-count `results` payload (one array element per n).
fn results_fragment(cases: &[Case]) -> String {
    let mut w = JsonWriter::new();
    w.begin_array();
    for c in cases {
        w.begin_object();
        w.field_u64("n", c.n as u64);
        w.key("score");
        w.begin_object();
        w.field_f64("per_sample_ms", c.score_per_sample_ms);
        w.field_f64("batched_serial_ms", c.score_batched_serial_ms);
        w.field_f64("batched_ms", c.score_batched_ms);
        w.field_f64(
            "batched_speedup",
            c.score_per_sample_ms / c.score_batched_ms,
        );
        w.end_object();
        w.key("hvp");
        w.begin_object();
        w.field_f64("per_sample_ms", c.hvp_per_sample_ms);
        w.field_f64("batched_serial_ms", c.hvp_batched_serial_ms);
        w.field_f64("batched_ms", c.hvp_batched_ms);
        w.field_f64("batched_speedup", c.hvp_per_sample_ms / c.hvp_batched_ms);
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.finish()
}

fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // At least one rep, or every timing stays +inf and the JSON is garbage.
    let reps: usize = if quick {
        1
    } else {
        chef_bench::arg_value(&args, "--reps", 3).max(1)
    };
    let sizes: &[usize] = if quick {
        &[2_000]
    } else {
        &[10_000, 50_000, 200_000]
    };
    let cores = sweep::available_cores();
    let threads = rayon::current_num_threads();
    let parallel_feature = cfg!(feature = "parallel");
    println!(
        "infl_kernels: cores={cores} rayon_threads={threads} parallel_feature={parallel_feature} quick={quick}"
    );

    if sweep::is_child(&args) {
        let cases = measure(sizes, reps);
        sweep::emit_child_result(&results_fragment(&cases));
        return;
    }

    let entries = sweep::run(&args);
    if quick {
        println!("quick mode: skipping BENCH_infl_kernels.json");
        return;
    }

    // telemetry.v1 envelope: common header (schema/kind/context), then the
    // kind-specific `results` payload — the one-thread run, for readers
    // that predate `thread_sweep`. See DESIGN.md §10.
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", chef_obs::SCHEMA_VERSION);
    w.field_str("kind", "infl_kernels");
    w.key("context");
    w.begin_object();
    w.field_u64("available_cores", cores as u64);
    w.field_u64("rayon_threads", sweep::baseline(&entries).threads as u64);
    w.field_bool("parallel_feature", parallel_feature);
    w.field_bool("telemetry_feature", cfg!(feature = "telemetry"));
    w.field_u64("reps", reps as u64);
    w.field_u64("dim", 32);
    w.field_u64("num_classes", 2);
    w.field_str("unit", "ms (best of reps)");
    sweep::write_context_fields(&mut w, &entries);
    w.end_object();
    w.key("results");
    w.raw(&sweep::baseline(&entries).fragment);
    sweep::write_thread_sweep(&mut w, &entries, "results", |f| f.to_string());
    w.end_object();
    let path = workspace_root().join("BENCH_infl_kernels.json");
    std::fs::write(&path, w.finish() + "\n").expect("write BENCH_infl_kernels.json");
    println!("wrote {}", path.display());
}
