//! Serial-vs-parallel wall time for the selector hot path, swept over
//! rayon pool sizes.
//!
//! Times one Infl ranking pass (`rank_infl_with_vector`) and one
//! Increm-Infl bound pass (`IncremInfl::candidates`) at n ∈ {10k, 50k,
//! 200k} candidates, comparing the always-compiled `*_serial` entry
//! points against the dispatching (parallel when the `parallel` feature
//! is on) public API. Because the rayon shim pins its pool size once per
//! process, each thread count runs in a re-exec'd child (see
//! `chef_bench::sweep`); the parent assembles `BENCH_selector.json` at
//! the workspace root as a telemetry.v1 document (see DESIGN.md §10)
//! whose top-level `results` is the one-thread run and whose
//! `thread_sweep` carries the full trajectory. A speedup below the core
//! count is only meaningful relative to `context.available_cores` and
//! the per-entry thread count.
//!
//! The timed kernels carry no instrumentation at all (counters are
//! derived at phase level, see DESIGN.md §10), so the measured numbers
//! are identical with the `telemetry` feature on or off — the feature
//! flag is recorded in `context.telemetry_feature` to make that
//! checkable.
//!
//! Usage: `cargo run --release -p chef-bench --bin par_speedup`
//! (`--reps R` for best-of-R timing, `--threads 1,2,4` to pick the
//! sweep, `--quick` for a tiny CI-sized run with no JSON output).

use chef_bench::{prepare, sweep};
use chef_core::increm::IncremInfl;
use chef_core::influence::{
    influence_vector, rank_infl_with_vector, rank_infl_with_vector_serial, InflConfig,
};
use chef_data::{DatasetKind, DatasetSpec};
use chef_model::{LogisticRegression, Model, WeightedObjective};
use chef_obs::JsonWriter;
use chef_train::{train, SgdConfig};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Synthetic MIMIC-like spec with exactly `n` training samples.
fn spec_for(n: usize) -> DatasetSpec {
    DatasetSpec {
        name: "par_speedup",
        kind: DatasetKind::FullyClean,
        train: n,
        val: 500,
        test: 100,
        dim: 32,
        num_classes: 2,
        class_sep: 1.0,
        positive_rate: 0.45,
        truth_noise: 0.0,
        weak_quality: 0.5,
        annotator_error: 0.05,
    }
}

/// One wall-time measurement in milliseconds.
fn once_ms<R>(mut f: impl FnMut() -> R) -> f64 {
    let t = Instant::now();
    black_box(f());
    t.elapsed().as_secs_f64() * 1e3
}

struct Case {
    n: usize,
    rank_serial_ms: f64,
    rank_parallel_ms: f64,
    bounds_serial_ms: f64,
    bounds_parallel_ms: f64,
}

fn run_case(n: usize, reps: usize) -> Case {
    let prepared = prepare(&spec_for(n), 1);
    let data = &prepared.split.train;
    let val = &prepared.split.val;
    let model = LogisticRegression::new(data.dim(), 2);
    let obj = WeightedObjective::new(0.8, 0.2);
    let sgd = SgdConfig {
        lr: 0.1,
        epochs: 3,
        batch_size: 1024,
        seed: 2,
        cache_provenance: false,
    };
    let w0 = train(&model, &obj, data, &model.initial_params(0), &sgd).w;
    let increm = IncremInfl::initialize(&model, data, &w0);
    let w_k = train(&model, &obj, data, &w0, &SgdConfig { epochs: 1, ..sgd }).w;
    let v = influence_vector(&model, &obj, data, val, &w_k, &InflConfig::default());
    let pool = data.uncleaned_indices();
    assert_eq!(pool.len(), n, "entire training set should be uncleaned");

    // Interleave the variants inside each repetition (rather than timing
    // all reps of one variant back to back) so scheduler noise and
    // frequency excursions hit serial and parallel equally; rep 0 is an
    // untimed warmup, best-of-reps then picks each variant's cleanest
    // window. Timing serial-then-parallel per rep also keeps a 1-worker
    // pool honest: the gate dispatches both to the same code, so the
    // ratio should sit at ~1.0, not inherit a drift-shaped bias.
    let mut rank_serial_ms = f64::INFINITY;
    let mut rank_parallel_ms = f64::INFINITY;
    let mut bounds_serial_ms = f64::INFINITY;
    let mut bounds_parallel_ms = f64::INFINITY;
    for rep in 0..=reps {
        let warmup = rep == 0;
        let t = once_ms(|| rank_infl_with_vector_serial(&model, data, &w_k, &v, &pool, obj.gamma));
        if !warmup {
            rank_serial_ms = rank_serial_ms.min(t);
        }
        let t = once_ms(|| rank_infl_with_vector(&model, data, &w_k, &v, &pool, obj.gamma));
        if !warmup {
            rank_parallel_ms = rank_parallel_ms.min(t);
        }
        let t = once_ms(|| increm.candidates_serial(&model, data, &w_k, &v, &pool, 10, obj.gamma));
        if !warmup {
            bounds_serial_ms = bounds_serial_ms.min(t);
        }
        let t = once_ms(|| increm.candidates(&model, data, &w_k, &v, &pool, 10, obj.gamma));
        if !warmup {
            bounds_parallel_ms = bounds_parallel_ms.min(t);
        }
    }
    Case {
        n,
        rank_serial_ms,
        rank_parallel_ms,
        bounds_serial_ms,
        bounds_parallel_ms,
    }
}

/// Measure all sizes at the current pool size, printing paper-style rows.
fn measure(sizes: &[usize], reps: usize) -> Vec<Case> {
    let mut cases = Vec::new();
    for &n in sizes {
        let c = run_case(n, reps);
        println!(
            "n={:>7}  rank: serial {:.2} ms / parallel {:.2} ms ({:.2}x)   bounds: serial {:.2} ms / parallel {:.2} ms ({:.2}x)",
            c.n,
            c.rank_serial_ms,
            c.rank_parallel_ms,
            c.rank_serial_ms / c.rank_parallel_ms,
            c.bounds_serial_ms,
            c.bounds_parallel_ms,
            c.bounds_serial_ms / c.bounds_parallel_ms,
        );
        cases.push(c);
    }
    cases
}

/// The per-thread-count `results` payload (one array element per n).
fn results_fragment(cases: &[Case]) -> String {
    let mut w = JsonWriter::new();
    w.begin_array();
    for c in cases {
        w.begin_object();
        w.field_u64("n", c.n as u64);
        for (section, serial, parallel) in [
            ("rank_infl", c.rank_serial_ms, c.rank_parallel_ms),
            ("increm_bounds", c.bounds_serial_ms, c.bounds_parallel_ms),
        ] {
            w.key(section);
            w.begin_object();
            w.field_f64("serial_ms", serial);
            w.field_f64("parallel_ms", parallel);
            w.field_f64("speedup", serial / parallel);
            w.end_object();
        }
        w.end_object();
    }
    w.end_array();
    w.finish()
}

fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // At least one rep, or every timing stays +inf and the JSON is garbage.
    let reps: usize = if quick {
        1
    } else {
        chef_bench::arg_value(&args, "--reps", 3).max(1)
    };
    let sizes: &[usize] = if quick {
        &[2_000]
    } else {
        &[10_000, 50_000, 200_000]
    };
    let cores = sweep::available_cores();
    let threads = rayon::current_num_threads();
    let parallel_feature = cfg!(feature = "parallel");
    println!(
        "par_speedup: cores={cores} rayon_threads={threads} parallel_feature={parallel_feature} quick={quick}"
    );

    if sweep::is_child(&args) {
        let cases = measure(sizes, reps);
        sweep::emit_child_result(&results_fragment(&cases));
        return;
    }

    let entries = sweep::run(&args);
    if quick {
        println!("quick mode: skipping BENCH_selector.json");
        return;
    }

    // telemetry.v1 envelope: common header (schema/kind/context), then the
    // kind-specific `results` payload — the one-thread run, for readers
    // that predate `thread_sweep`. See DESIGN.md §10.
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", chef_obs::SCHEMA_VERSION);
    w.field_str("kind", "par_speedup");
    w.key("context");
    w.begin_object();
    w.field_u64("available_cores", cores as u64);
    w.field_u64("rayon_threads", sweep::baseline(&entries).threads as u64);
    w.field_bool("parallel_feature", parallel_feature);
    w.field_bool("telemetry_feature", cfg!(feature = "telemetry"));
    w.field_u64("reps", reps as u64);
    w.field_str("unit", "ms (best of reps)");
    sweep::write_context_fields(&mut w, &entries);
    w.end_object();
    w.key("results");
    w.raw(&sweep::baseline(&entries).fragment);
    sweep::write_thread_sweep(&mut w, &entries, "results", |f| f.to_string());
    w.end_object();
    let path = workspace_root().join("BENCH_selector.json");
    std::fs::write(&path, w.finish() + "\n").expect("write BENCH_selector.json");
    println!("wrote {}", path.display());
}
