//! Serial-vs-parallel wall time for the selector hot path.
//!
//! Times one Infl ranking pass (`rank_infl_with_vector`) and one
//! Increm-Infl bound pass (`IncremInfl::candidates`) at n ∈ {10k, 50k,
//! 200k} candidates, comparing the always-compiled `*_serial` entry
//! points against the dispatching (parallel when the `parallel` feature
//! is on) public API. Results go to `BENCH_selector.json` at the
//! workspace root as a telemetry.v1 document (see DESIGN.md §10) whose
//! `context` records the hardware — a speedup below the core count is
//! only meaningful relative to `available_cores` and `rayon_threads`.
//!
//! The timed kernels carry no instrumentation at all (counters are
//! derived at phase level, see DESIGN.md §10), so the measured numbers
//! are identical with the `telemetry` feature on or off — the feature
//! flag is recorded in `context.telemetry_feature` to make that
//! checkable.
//!
//! Usage: `cargo run --release -p chef-bench --bin par_speedup`
//! (set `RAYON_NUM_THREADS` to pin the pool size).

use chef_bench::prepare;
use chef_core::increm::IncremInfl;
use chef_core::influence::{
    influence_vector, rank_infl_with_vector, rank_infl_with_vector_serial, InflConfig,
};
use chef_data::{DatasetKind, DatasetSpec};
use chef_model::{LogisticRegression, Model, WeightedObjective};
use chef_obs::JsonWriter;
use chef_train::{train, SgdConfig};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Synthetic MIMIC-like spec with exactly `n` training samples.
fn spec_for(n: usize) -> DatasetSpec {
    DatasetSpec {
        name: "par_speedup",
        kind: DatasetKind::FullyClean,
        train: n,
        val: 500,
        test: 100,
        dim: 32,
        num_classes: 2,
        class_sep: 1.0,
        positive_rate: 0.45,
        truth_noise: 0.0,
        weak_quality: 0.5,
        annotator_error: 0.05,
    }
}

/// Best-of-`reps` wall time in milliseconds.
fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

struct Case {
    n: usize,
    rank_serial_ms: f64,
    rank_parallel_ms: f64,
    bounds_serial_ms: f64,
    bounds_parallel_ms: f64,
}

fn run_case(n: usize, reps: usize) -> Case {
    let prepared = prepare(&spec_for(n), 1);
    let data = &prepared.split.train;
    let val = &prepared.split.val;
    let model = LogisticRegression::new(data.dim(), 2);
    let obj = WeightedObjective::new(0.8, 0.2);
    let sgd = SgdConfig {
        lr: 0.1,
        epochs: 3,
        batch_size: 1024,
        seed: 2,
        cache_provenance: false,
    };
    let w0 = train(&model, &obj, data, &model.initial_params(0), &sgd).w;
    let increm = IncremInfl::initialize(&model, data, &w0);
    let w_k = train(&model, &obj, data, &w0, &SgdConfig { epochs: 1, ..sgd }).w;
    let v = influence_vector(&model, &obj, data, val, &w_k, &InflConfig::default());
    let pool = data.uncleaned_indices();
    assert_eq!(pool.len(), n, "entire training set should be uncleaned");

    let rank_serial_ms = time_ms(reps, || {
        rank_infl_with_vector_serial(&model, data, &w_k, &v, &pool, obj.gamma)
    });
    let rank_parallel_ms = time_ms(reps, || {
        rank_infl_with_vector(&model, data, &w_k, &v, &pool, obj.gamma)
    });
    let bounds_serial_ms = time_ms(reps, || {
        increm.candidates_serial(&model, data, &w_k, &v, &pool, 10, obj.gamma)
    });
    let bounds_parallel_ms = time_ms(reps, || {
        increm.candidates(&model, data, &w_k, &v, &pool, 10, obj.gamma)
    });
    Case {
        n,
        rank_serial_ms,
        rank_parallel_ms,
        bounds_serial_ms,
        bounds_parallel_ms,
    }
}

fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // At least one rep, or every timing stays +inf and the JSON is garbage.
    let reps: usize = chef_bench::arg_value(&args, "--reps", 3).max(1);
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let threads = rayon::current_num_threads();
    let parallel_feature = cfg!(feature = "parallel");
    println!(
        "par_speedup: cores={cores} rayon_threads={threads} parallel_feature={parallel_feature}"
    );

    let mut cases = Vec::new();
    for n in [10_000usize, 50_000, 200_000] {
        let c = run_case(n, reps);
        println!(
            "n={:>7}  rank: serial {:.2} ms / parallel {:.2} ms ({:.2}x)   bounds: serial {:.2} ms / parallel {:.2} ms ({:.2}x)",
            c.n,
            c.rank_serial_ms,
            c.rank_parallel_ms,
            c.rank_serial_ms / c.rank_parallel_ms,
            c.bounds_serial_ms,
            c.bounds_parallel_ms,
            c.bounds_serial_ms / c.bounds_parallel_ms,
        );
        cases.push(c);
    }

    // telemetry.v1 envelope: common header (schema/kind/context), then the
    // kind-specific `results` payload. See DESIGN.md §10.
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", chef_obs::SCHEMA_VERSION);
    w.field_str("kind", "par_speedup");
    w.key("context");
    w.begin_object();
    w.field_u64("available_cores", cores as u64);
    w.field_u64("rayon_threads", threads as u64);
    w.field_bool("parallel_feature", parallel_feature);
    w.field_bool("telemetry_feature", cfg!(feature = "telemetry"));
    w.field_u64("reps", reps as u64);
    w.field_str("unit", "ms (best of reps)");
    w.end_object();
    w.key("results");
    w.begin_array();
    for c in &cases {
        w.begin_object();
        w.field_u64("n", c.n as u64);
        for (section, serial, parallel) in [
            ("rank_infl", c.rank_serial_ms, c.rank_parallel_ms),
            ("increm_bounds", c.bounds_serial_ms, c.bounds_parallel_ms),
        ] {
            w.key(section);
            w.begin_object();
            w.field_f64("serial_ms", serial);
            w.field_f64("parallel_ms", parallel);
            w.field_f64("speedup", serial / parallel);
            w.end_object();
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let path = workspace_root().join("BENCH_selector.json");
    std::fs::write(&path, w.finish() + "\n").expect("write BENCH_selector.json");
    println!("wrote {}", path.display());
}
