//! **Exp2** — Table 2 of the CHEF paper.
//!
//! Wall-clock time of selecting the top-`b = 10` influential samples at
//! the last cleaning round, with (`Increm-Infl`) and without (`Full`) the
//! Theorem-1 pruning:
//!
//! * `Time_inf`  — the whole selector phase (CG solve for `H⁻¹∇F_val`,
//!   bound evaluation, exact influence of the surviving candidates);
//! * `Time_grad` — the class-wise/sample-wise gradient evaluations only
//!   (the dominant cost the paper isolates).
//!
//! The harness replays the first 9 rounds of the b = 10 pipeline to land
//! in the same state the paper measures (the last round), then times both
//! selector variants on that state over `--reps` repetitions, and checks
//! that they select the identical sample set (the paper's correctness
//! observation).
//!
//! ```text
//! cargo run --release -p chef-bench --bin exp2 [--scale 5] [--reps 5]
//! ```

use chef_bench::prep::arg_value;
use chef_bench::{prepare, print_table, results_dir, write_results_csv, Cell, Method};
use chef_core::increm::IncremInfl;
use chef_core::influence::{influence_vector, rank_infl_with_vector, InflConfig};
use chef_core::{AnnotationConfig, AnnotationPhase, ModelConstructor, Selection};
use chef_linalg::RunningStats;
use chef_model::LogisticRegression;
use chef_obs::JsonWriter;
use std::time::Instant;

struct Measurement {
    time_inf_full: RunningStats,
    time_inf_increm: RunningStats,
    time_grad_full: RunningStats,
    time_grad_increm: RunningStats,
    candidates: usize,
    pool: usize,
    identical: bool,
}

#[allow(clippy::too_many_arguments)]
fn measure(dataset: &str, scale: usize, reps: usize, b: usize) -> Measurement {
    let spec = chef_data::by_name(dataset, scale).expect("dataset");
    let prepared = prepare(&spec, 0);
    let cell = Cell {
        dataset: dataset.to_string(),
        method: Method::InflTwo,
        b,
        budget: 100,
        gamma: 0.8,
        seed: 0,
        neural: false,
    };
    let cfg = chef_bench::grid::cell_config(&prepared, &cell);
    let model = LogisticRegression::new(prepared.split.train.dim(), 2);
    let ctor = ModelConstructor::new(cfg.constructor, cfg.sgd);
    let annotator = AnnotationPhase::new(AnnotationConfig {
        strategy: chef_core::LabelStrategy::SuggestionOnly,
        ..cfg.annotation
    });

    // Initialization + Increm-Infl provenance at w⁽⁰⁾.
    let mut data = prepared.split.train.clone();
    let val = &prepared.split.val;
    let init = ctor.initial_train(&model, &cfg.objective, &data);
    let mut trace = init.trace;
    let mut w = init.w;
    let increm = IncremInfl::initialize(&model, &data, &w);

    // Replay rounds 0..(B/b − 1): select with Infl, clean with the
    // suggestion, refresh the model; the final state is "the last round".
    let rounds = 100 / b - 1;
    let mut w_eval = w.clone();
    for _ in 0..rounds {
        let pool = data.uncleaned_indices();
        let v = influence_vector(
            &model,
            &cfg.objective,
            &data,
            val,
            &w_eval,
            &InflConfig::default(),
        );
        let (scores, _) = increm.select(&model, &data, &w_eval, &v, &pool, b, cfg.objective.gamma);
        let selections: Vec<Selection> = scores
            .iter()
            .map(|s| Selection {
                index: s.index,
                suggested: Some(s.suggested),
            })
            .collect();
        let old = data.clone();
        let _ = annotator.annotate(&mut data, &selections);
        let changed: Vec<usize> = selections
            .iter()
            .map(|s| s.index)
            .filter(|&i| data.is_clean(i))
            .collect();
        let upd = ctor.update(&model, &cfg.objective, &old, &data, &changed, &trace);
        w = upd.w;
        trace = upd.trace;
        w_eval = w.clone();
    }

    // ---- Timed measurements on the last-round state. ----
    let pool = data.uncleaned_indices();
    let mut out = Measurement {
        time_inf_full: RunningStats::new(),
        time_inf_increm: RunningStats::new(),
        time_grad_full: RunningStats::new(),
        time_grad_increm: RunningStats::new(),
        candidates: 0,
        pool: pool.len(),
        identical: true,
    };
    for _ in 0..reps {
        // Full: one CG solve + exact influence of every pool sample.
        let t0 = Instant::now();
        let v = influence_vector(
            &model,
            &cfg.objective,
            &data,
            val,
            &w_eval,
            &InflConfig::default(),
        );
        let tg = Instant::now();
        let mut full =
            rank_infl_with_vector(&model, &data, &w_eval, &v, &pool, cfg.objective.gamma);
        let grad_full = tg.elapsed();
        full.truncate(b);
        out.time_inf_full.push(t0.elapsed().as_secs_f64());
        out.time_grad_full.push(grad_full.as_secs_f64());

        // Increm-Infl: CG solve + Theorem-1 bounds + exact influence of
        // the candidates only.
        let t0 = Instant::now();
        let v = influence_vector(
            &model,
            &cfg.objective,
            &data,
            val,
            &w_eval,
            &InflConfig::default(),
        );
        let (cands, stats) =
            increm.candidates(&model, &data, &w_eval, &v, &pool, b, cfg.objective.gamma);
        let tg = Instant::now();
        let mut inc =
            rank_infl_with_vector(&model, &data, &w_eval, &v, &cands, cfg.objective.gamma);
        let grad_inc = tg.elapsed();
        inc.truncate(b);
        out.time_inf_increm.push(t0.elapsed().as_secs_f64());
        out.time_grad_increm.push(grad_inc.as_secs_f64());
        out.candidates = stats.candidates;

        let fs: Vec<usize> = full.iter().map(|s| s.index).collect();
        let is: Vec<usize> = inc.iter().map(|s| s.index).collect();
        out.identical &= fs == is;
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg_value(&args, "--scale", 5usize);
    let reps = arg_value(&args, "--reps", 5usize);
    let b = arg_value(&args, "--b", 10usize);

    let datasets = ["MIMIC", "Retina", "Chexpert", "Fashion", "Fact", "Twitter"];
    let header: Vec<String> = [
        "dataset",
        "Time_inf Full (ms)",
        "Time_inf Increm (ms)",
        "speedup",
        "Time_grad Full (ms)",
        "Time_grad Increm (ms)",
        "speedup",
        "evaluated",
        "identical top-b",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    let mut measurements = Vec::new();
    for d in datasets {
        let m = measure(d, scale, reps, b);
        let ms = |s: &RunningStats| format!("{:.2}\u{b1}{:.2}", s.mean() * 1e3, s.std_dev() * 1e3);
        let speed =
            |a: &RunningStats, b: &RunningStats| format!("{:.1}x", a.mean() / b.mean().max(1e-12));
        rows.push(vec![
            d.to_string(),
            ms(&m.time_inf_full),
            ms(&m.time_inf_increm),
            speed(&m.time_inf_full, &m.time_inf_increm),
            ms(&m.time_grad_full),
            ms(&m.time_grad_increm),
            speed(&m.time_grad_full, &m.time_grad_increm),
            format!("{}/{}", m.candidates, m.pool),
            m.identical.to_string(),
        ]);
        measurements.push((d, m));
    }
    print_table(
        &format!("Table 2 — selector timing, Full vs Increm-Infl (b={b}, scale 1/{scale})"),
        &header,
        &rows,
    );
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let path = write_results_csv("table2", &header_refs, &rows);
    eprintln!("wrote {}", path.display());

    // telemetry.v1 companion document: the same measurements with
    // machine-readable units and the hardware context (DESIGN.md §10).
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", chef_obs::SCHEMA_VERSION);
    w.field_str("kind", "table2");
    w.key("context");
    w.begin_object();
    w.field_u64("available_cores", chef_obs::available_cores() as u64);
    w.field_u64("rayon_threads", rayon::current_num_threads() as u64);
    w.field_bool("parallel_feature", cfg!(feature = "parallel"));
    w.field_bool("telemetry_feature", cfg!(feature = "telemetry"));
    w.field_u64("scale", scale as u64);
    w.field_u64("reps", reps as u64);
    w.field_u64("b", b as u64);
    w.end_object();
    w.key("results");
    w.begin_array();
    for (d, m) in &measurements {
        w.begin_object();
        w.field_str("dataset", d);
        w.field_u64("pool", m.pool as u64);
        w.field_u64("scored", m.candidates as u64);
        w.field_u64("pruned", (m.pool - m.candidates) as u64);
        w.field_f64(
            "bound_hit_rate",
            (m.pool - m.candidates) as f64 / m.pool.max(1) as f64,
        );
        for (key, stats) in [
            ("time_inf_full_ms", &m.time_inf_full),
            ("time_inf_increm_ms", &m.time_inf_increm),
            ("time_grad_full_ms", &m.time_grad_full),
            ("time_grad_increm_ms", &m.time_grad_increm),
        ] {
            w.key(key);
            w.begin_object();
            w.field_f64("mean", stats.mean() * 1e3);
            w.field_f64("std", stats.std_dev() * 1e3);
            w.end_object();
        }
        w.field_bool("identical_top_b", m.identical);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let tpath = results_dir().join("table2_telemetry.json");
    std::fs::write(&tpath, w.finish() + "\n").expect("write table2_telemetry.json");
    eprintln!("wrote {}", tpath.display());
}
