//! **Exp3** — Figure 2 of the CHEF paper.
//!
//! Accumulated model-constructor runtime across cleaning rounds,
//! DeltaGrad-L vs Retrain, plus the end-of-run F1 parity check (the
//! "Infl (two) + DeltaGrad" column of Table 1 measures the same thing
//! from the quality side).
//!
//! ```text
//! cargo run --release -p chef-bench --bin exp3 [--scale 5] [--rounds 10]
//! ```

use chef_bench::prep::arg_value;
use chef_bench::{prepare, print_table, results_dir, run_cell, write_results_csv, Cell, Method};
use chef_data::paper_suite;
use chef_obs::JsonWriter;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg_value(&args, "--scale", 5usize);
    let rounds = arg_value(&args, "--rounds", 10usize);
    let b = arg_value(&args, "--b", 10usize);
    let suite = paper_suite(scale);

    let header: Vec<String> = {
        let mut h = vec!["dataset".to_string(), "constructor".to_string()];
        h.extend((1..=rounds).map(|r| format!("r{r} (ms)")));
        h.push("final F1".into());
        h
    };
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut speedups = Vec::new();
    let mut cell_docs: Vec<(String, &'static str, Option<String>)> = Vec::new();

    for spec in &suite {
        let prepared = prepare(spec, 0);
        let mut totals = Vec::new();
        for method in [Method::InflTwo, Method::InflTwoDeltaGrad] {
            let cell = Cell {
                dataset: spec.name.to_string(),
                method,
                b,
                budget: b * rounds,
                gamma: 0.8,
                seed: 0,
                neural: false,
            };
            let result = run_cell(&prepared, &cell);
            let name = if method == Method::InflTwo {
                "Retrain"
            } else {
                "DeltaGrad-L"
            };
            let mut acc = 0.0;
            let mut row = vec![spec.name.to_string(), name.to_string()];
            for r in &result.report.rounds {
                acc += r.update_time.as_secs_f64() * 1e3;
                row.push(format!("{acc:.1}"));
            }
            while row.len() < 2 + rounds {
                row.push("-".into());
            }
            row.push(format!("{:.4}", result.cleaned_f1));
            totals.push(acc);
            csv_rows.push(row.clone());
            rows.push(row);
            cell_docs.push((spec.name.to_string(), name, result.telemetry_json));
        }
        if totals.len() == 2 && totals[1] > 0.0 {
            speedups.push((spec.name, totals[0] / totals[1]));
        }
    }

    print_table(
        &format!(
            "Figure 2 — accumulated model-constructor time over {rounds} rounds (b={b}, scale 1/{scale})"
        ),
        &header,
        &rows,
    );
    println!("\nDeltaGrad-L speed-up over Retrain (accumulated):");
    for (name, s) in &speedups {
        println!("  {name:<9} {s:.1}x");
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let path = write_results_csv("figure2", &header_refs, &csv_rows);
    eprintln!("wrote {}", path.display());

    // telemetry.v1 companion: one full per-cell export (rounds with
    // exact-vs-replay step counts, spans, histograms) per dataset ×
    // constructor, embedded verbatim (DESIGN.md §10). Requires the
    // `telemetry` feature; without it the cells export nothing and the
    // document records only the context.
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", chef_obs::SCHEMA_VERSION);
    w.field_str("kind", "figure2");
    w.key("context");
    w.begin_object();
    w.field_u64("available_cores", chef_obs::available_cores() as u64);
    w.field_bool("parallel_feature", cfg!(feature = "parallel"));
    w.field_bool("telemetry_feature", cfg!(feature = "telemetry"));
    w.field_u64("scale", scale as u64);
    w.field_u64("rounds", rounds as u64);
    w.field_u64("b", b as u64);
    w.end_object();
    w.key("cells");
    w.begin_array();
    for (dataset, constructor, doc) in &cell_docs {
        let Some(doc) = doc else { continue };
        w.begin_object();
        w.field_str("dataset", dataset);
        w.field_str("constructor", constructor);
        w.key("telemetry");
        w.raw(doc);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let tpath = results_dir().join("figure2_telemetry.json");
    std::fs::write(&tpath, w.finish() + "\n").expect("write figure2_telemetry.json");
    eprintln!("wrote {}", tpath.display());
}
