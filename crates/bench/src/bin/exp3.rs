//! **Exp3** — Figure 2 of the CHEF paper.
//!
//! Accumulated model-constructor runtime across cleaning rounds,
//! DeltaGrad-L vs Retrain, plus the end-of-run F1 parity check (the
//! "Infl (two) + DeltaGrad" column of Table 1 measures the same thing
//! from the quality side).
//!
//! ```text
//! cargo run --release -p chef-bench --bin exp3 [--scale 5] [--rounds 10]
//! ```

use chef_bench::prep::arg_value;
use chef_bench::{prepare, print_table, run_cell, write_results_csv, Cell, Method};
use chef_data::paper_suite;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg_value(&args, "--scale", 5usize);
    let rounds = arg_value(&args, "--rounds", 10usize);
    let b = arg_value(&args, "--b", 10usize);
    let suite = paper_suite(scale);

    let header: Vec<String> = {
        let mut h = vec!["dataset".to_string(), "constructor".to_string()];
        h.extend((1..=rounds).map(|r| format!("r{r} (ms)")));
        h.push("final F1".into());
        h
    };
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut speedups = Vec::new();

    for spec in &suite {
        let prepared = prepare(spec, 0);
        let mut totals = Vec::new();
        for method in [Method::InflTwo, Method::InflTwoDeltaGrad] {
            let cell = Cell {
                dataset: spec.name.to_string(),
                method,
                b,
                budget: b * rounds,
                gamma: 0.8,
                seed: 0,
                neural: false,
            };
            let result = run_cell(&prepared, &cell);
            let name = if method == Method::InflTwo {
                "Retrain"
            } else {
                "DeltaGrad-L"
            };
            let mut acc = 0.0;
            let mut row = vec![spec.name.to_string(), name.to_string()];
            for r in &result.report.rounds {
                acc += r.update_time.as_secs_f64() * 1e3;
                row.push(format!("{acc:.1}"));
            }
            while row.len() < 2 + rounds {
                row.push("-".into());
            }
            row.push(format!("{:.4}", result.cleaned_f1));
            totals.push(acc);
            csv_rows.push(row.clone());
            rows.push(row);
        }
        if totals.len() == 2 && totals[1] > 0.0 {
            speedups.push((spec.name, totals[0] / totals[1]));
        }
    }

    print_table(
        &format!(
            "Figure 2 — accumulated model-constructor time over {rounds} rounds (b={b}, scale 1/{scale})"
        ),
        &header,
        &rows,
    );
    println!("\nDeltaGrad-L speed-up over Retrain (accumulated):");
    for (name, s) in &speedups {
        println!("  {name:<9} {s:.1}x");
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let path = write_results_csv("figure2", &header_refs, &csv_rows);
    eprintln!("wrote {}", path.display());
}
