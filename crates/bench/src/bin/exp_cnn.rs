//! **Appendix G.2** — Table 7 of the CHEF paper.
//!
//! Exp1 repeated with a non-convex model. The paper uses LeNet /
//! 1-D CNNs; the substitution here is a one-hidden-layer tanh MLP with
//! manual backprop and finite-difference HVPs (see DESIGN.md §4).
//! Following the paper, only MIMIC, Retina, Fact and Twitter are run
//! (LeNet underperformed on Fashion/Chexpert), with Infl (one/two/three)
//! at b ∈ {100, 10} and Infl-D / Active / O2U at b = 10.
//!
//! ```text
//! cargo run --release -p chef-bench --bin exp_cnn [--scale 5] [--seeds 3]
//! ```

use chef_bench::prep::arg_value;
use chef_bench::{fmt_mean_std, prepare, print_table, run_grid, write_results_csv, Cell, Method};
use std::collections::HashMap;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg_value(&args, "--scale", 5usize);
    let seeds = arg_value(&args, "--seeds", 3u64);
    let budget = arg_value(&args, "--budget", 100usize);
    let datasets = ["MIMIC", "Retina", "Fact", "Twitter"];
    let b100: Vec<Method> = vec![Method::InflOne, Method::InflTwo, Method::InflThree];
    let b10: Vec<Method> = vec![
        Method::InflOne,
        Method::InflTwo,
        Method::InflThree,
        Method::InflD,
        Method::ActiveOne,
        Method::ActiveTwo,
        Method::O2u,
    ];

    let mut cells = Vec::new();
    for d in datasets {
        for seed in 0..seeds {
            for m in &b100 {
                cells.push(Cell {
                    dataset: d.to_string(),
                    method: *m,
                    b: budget,
                    budget,
                    gamma: 0.8,
                    seed,
                    neural: true,
                });
            }
            for m in &b10 {
                cells.push(Cell {
                    dataset: d.to_string(),
                    method: *m,
                    b: 10,
                    budget,
                    gamma: 0.8,
                    seed,
                    neural: true,
                });
            }
        }
    }
    eprintln!("exp_cnn: {} cells", cells.len());
    let results = run_grid(cells, |name, seed| {
        let spec = chef_data::by_name(name, scale).unwrap();
        prepare(&spec, seed)
    });

    let mut grid: HashMap<(String, Method, usize), Vec<f64>> = HashMap::new();
    let mut uncleaned: HashMap<String, Vec<f64>> = HashMap::new();
    for r in &results {
        grid.entry((r.cell.dataset.clone(), r.cell.method, r.cell.b))
            .or_default()
            .push(r.cleaned_f1);
        uncleaned
            .entry(r.cell.dataset.clone())
            .or_default()
            .push(r.uncleaned_f1);
    }

    let mut header = vec!["dataset".to_string(), "uncleaned".to_string()];
    for m in &b100 {
        header.push(format!("{} b=100", m.paper_name()));
    }
    for m in &b10 {
        header.push(format!("{} b=10", m.paper_name()));
    }
    let mut rows = Vec::new();
    for d in datasets {
        let mut row = vec![d.to_string(), fmt_mean_std(&uncleaned[d])];
        for (b, methods) in [(budget, &b100), (10usize, &b10)] {
            for m in methods {
                row.push(
                    grid.get(&(d.to_string(), *m, b))
                        .map(|v| fmt_mean_std(v))
                        .unwrap_or_else(|| "-".into()),
                );
            }
        }
        rows.push(row);
    }
    print_table(
        &format!("Table 7 — F1 after cleaning {budget} samples, MLP model (scale 1/{scale})"),
        &header,
        &rows,
    );
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let path = write_results_csv("table7", &header_refs, &rows);
    eprintln!("wrote {}", path.display());
}
