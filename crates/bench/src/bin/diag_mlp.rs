//! Internal diagnostic for the Appendix G.2 MLP configuration.
use chef_bench::prep::arg_value;
use chef_bench::{prepare, run_cell, Cell, Method};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg_value(&args, "--scale", 5usize);
    for name in ["MIMIC", "Retina"] {
        let spec = chef_data::by_name(name, scale).unwrap();
        for seed in 0..3u64 {
            let prepared = prepare(&spec, seed);
            for method in [Method::InflOne, Method::Random] {
                let cell = Cell {
                    dataset: name.to_string(),
                    method,
                    b: 10,
                    budget: 100,
                    gamma: 0.8,
                    seed,
                    neural: true,
                };
                let r = run_cell(&prepared, &cell);
                println!(
                    "{name} seed {seed} {:?}: {:.4} -> {:.4}",
                    method, r.uncleaned_f1, r.cleaned_f1
                );
            }
        }
    }
}
