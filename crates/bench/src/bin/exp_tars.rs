//! **Appendix G.3** — Tables 8 and 9 of the CHEF paper.
//!
//! Comparison against **TARS**, which requires deterministic noisy labels:
//! every probabilistic training label is rounded to its nearest
//! deterministic label (still weight γ) before the pipeline runs, exactly
//! as the paper's fair-comparison protocol prescribes. Following the
//! paper, only the datasets with small annotator panels are used (MIMIC,
//! Chexpert, Retina, Fashion).
//!
//! ```text
//! cargo run --release -p chef-bench --bin exp_tars [--scale 5] [--seeds 3]
//! ```

use chef_bench::prep::arg_value;
use chef_bench::{
    fmt_mean_std, prepare_rounded, print_table, run_grid, write_results_csv, Cell, Method,
};
use std::collections::HashMap;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg_value(&args, "--scale", 5usize);
    let seeds = arg_value(&args, "--seeds", 3u64);
    let budget = arg_value(&args, "--budget", 100usize);
    let datasets = ["MIMIC", "Chexpert", "Retina", "Fashion"];
    let methods: Vec<Method> = vec![
        Method::InflD,
        Method::ActiveOne,
        Method::ActiveTwo,
        Method::O2u,
        Method::Tars,
        Method::InflOne,
        Method::InflTwo,
        Method::InflThree,
    ];

    let mut cells = Vec::new();
    for d in datasets {
        for seed in 0..seeds {
            for &b in &[budget, 10] {
                for m in &methods {
                    cells.push(Cell {
                        dataset: d.to_string(),
                        method: *m,
                        b,
                        budget,
                        gamma: 0.8,
                        seed,
                        neural: false,
                    });
                }
            }
        }
    }
    eprintln!("exp_tars: {} cells", cells.len());
    let results = run_grid(cells, |name, seed| {
        let spec = chef_data::by_name(name, scale).unwrap();
        prepare_rounded(&spec, seed)
    });

    let mut grid: HashMap<(String, Method, usize), Vec<f64>> = HashMap::new();
    let mut uncleaned: HashMap<String, Vec<f64>> = HashMap::new();
    for r in &results {
        grid.entry((r.cell.dataset.clone(), r.cell.method, r.cell.b))
            .or_default()
            .push(r.cleaned_f1);
        uncleaned
            .entry(r.cell.dataset.clone())
            .or_default()
            .push(r.uncleaned_f1);
    }

    for (b, table) in [(budget, "Table 8"), (10, "Table 9")] {
        let mut header = vec!["dataset".to_string(), "uncleaned".to_string()];
        header.extend(methods.iter().map(|m| m.paper_name().to_string()));
        let mut rows = Vec::new();
        for d in datasets {
            let mut row = vec![d.to_string(), fmt_mean_std(&uncleaned[d])];
            for m in &methods {
                row.push(
                    grid.get(&(d.to_string(), *m, b))
                        .map(|v| fmt_mean_std(v))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            rows.push(row);
        }
        print_table(
            &format!("{table} — F1 vs TARS, rounded labels (b={b}, scale 1/{scale})"),
            &header,
            &rows,
        );
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let name = if b == 10 { "table9" } else { "table8" };
        let path = write_results_csv(name, &header_refs, &rows);
        eprintln!("wrote {}", path.display());
    }
}
