//! Ablations for the design choices DESIGN.md calls out.
//!
//! 1. **DeltaGrad `T₀`** — the exact-evaluation period trades replay
//!    fidelity (parameter distance to a true retrain) against speed
//!    (fraction of iterations that need a full-batch gradient).
//! 2. **Hessian subsample size** — the CG solve behind every influence
//!    computation runs on a subsampled Hessian; how much does the
//!    resulting top-b selection differ from the exact solve, and what
//!    does it cost?
//! 3. **Increm-Infl `slack`** — widening the Theorem-1 interval keeps the
//!    top-b guarantee under the Hessian-freeze approximation but inflates
//!    the candidate set.
//! 4. **Label-model temperature** — posterior calibration controls how
//!    "probabilistic" the weak labels are, which is the input condition
//!    for the whole pipeline.
//! 5. **CG vs LiSSA** — the two inverse-Hessian-vector-product
//!    estimators from the influence-function literature, compared on
//!    cost and top-b agreement.
//!
//! ```text
//! cargo run --release -p chef-bench --bin ablations [--scale 5]
//! ```

use chef_bench::prep::arg_value;
use chef_bench::{prepare, print_table, write_results_csv};
use chef_core::increm::IncremInfl;
use chef_core::influence::{influence_vector, rank_infl_with_vector, InflConfig};
use chef_linalg::vector;
use chef_model::{LogisticRegression, Model, WeightedObjective};
use chef_train::{deltagrad_update, train, DeltaGradConfig, SgdConfig};
use chef_weak::{label_model_labels, WeakenConfig};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg_value(&args, "--scale", 5usize);
    deltagrad_t0(scale);
    hessian_batch(scale);
    increm_slack(scale);
    label_model_temperature(scale);
    cg_vs_lissa(scale);
}

fn cg_vs_lissa(scale: usize) {
    use chef_core::lissa::{lissa_influence_vector, LissaConfig};
    let (model, obj, prepared, base, _) = fixture(scale);
    let data = &prepared.split.train;
    let val = &prepared.split.val;
    let pool = data.uncleaned_indices();

    let t_cg = Instant::now();
    let v_cg = influence_vector(&model, &obj, data, val, &base.w, &InflConfig::default());
    let cg_ms = t_cg.elapsed().as_secs_f64() * 1e3;
    let top = |v: &[f64]| {
        let mut r = rank_infl_with_vector(&model, data, &base.w, v, &pool, obj.gamma);
        r.truncate(10);
        r.into_iter().map(|s| s.index).collect::<Vec<_>>()
    };
    let cg_top = top(&v_cg);

    let header: Vec<String> = [
        "solver",
        "depth x repeats",
        "time (ms)",
        "top-10 overlap with CG",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = vec![vec![
        "CG (default)".to_string(),
        "-".to_string(),
        format!("{cg_ms:.2}"),
        "10/10".to_string(),
    ]];
    for (depth, repeats) in [(100usize, 1usize), (400, 4), (800, 8)] {
        let cfg = LissaConfig {
            depth,
            repeats,
            scale: 10.0,
            batch: 64,
            seed: 5,
        };
        let t = Instant::now();
        let v = lissa_influence_vector(&model, &obj, data, val, &base.w, &cfg);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let overlap = top(&v).iter().filter(|i| cg_top.contains(i)).count();
        rows.push(vec![
            "LiSSA".to_string(),
            format!("{depth} x {repeats}"),
            format!("{ms:.2}"),
            format!("{overlap}/10"),
        ]);
    }
    print_table(
        "Ablation 5 — inverse-HVP estimators: conjugate gradients vs LiSSA",
        &header,
        &rows,
    );
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    write_results_csv("ablation_cg_vs_lissa", &header_refs, &rows);
}

/// Shared fixture: a weakly-labeled Retina-like dataset plus a trained
/// model with provenance.
fn fixture(
    scale: usize,
) -> (
    LogisticRegression,
    WeightedObjective,
    chef_bench::PreparedDataset,
    chef_train::TrainOutcome,
    SgdConfig,
) {
    let spec = chef_data::by_name("Retina", scale).unwrap();
    let prepared = prepare(&spec, 1);
    let model = LogisticRegression::new(prepared.split.train.dim(), 2);
    let obj = WeightedObjective::new(0.8, 0.2);
    let sgd = SgdConfig {
        lr: 0.1,
        epochs: 20,
        batch_size: 256,
        seed: 7,
        cache_provenance: true,
    };
    let out = train(
        &model,
        &obj,
        &prepared.split.train,
        &model.initial_params(0),
        &sgd,
    );
    (model, obj, prepared, out, sgd)
}

fn deltagrad_t0(scale: usize) {
    let (model, obj, prepared, base, sgd) = fixture(scale);
    let data = &prepared.split.train;
    let mut cleaned = data.clone();
    let changed: Vec<usize> = data.uncleaned_indices().into_iter().take(10).collect();
    for &i in &changed {
        let t = data.ground_truth(i).unwrap();
        cleaned.clean_label(i, chef_model::SoftLabel::onehot(t, 2));
    }
    let retrain_start = Instant::now();
    let retrain = train(&model, &obj, &cleaned, &model.initial_params(0), &sgd);
    let retrain_ms = retrain_start.elapsed().as_secs_f64() * 1e3;

    let header: Vec<String> = [
        "T0",
        "rel. param distance",
        "explicit iters",
        "time (ms)",
        "speedup vs retrain",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for t0 in [1usize, 2, 5, 10, 20, 50] {
        let cfg = DeltaGradConfig { j0: 10, t0, m0: 2 };
        let start = Instant::now();
        let dg = deltagrad_update(
            &model,
            &obj,
            data,
            &cleaned,
            &changed,
            base.trace.as_ref().unwrap(),
            &cfg,
        );
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let rel = vector::distance(&dg.w, &retrain.w) / vector::norm2(&retrain.w).max(1.0);
        rows.push(vec![
            t0.to_string(),
            format!("{rel:.2e}"),
            format!(
                "{}/{}",
                dg.stats.explicit_iters,
                dg.stats.explicit_iters + dg.stats.approx_iters
            ),
            format!("{ms:.1}"),
            format!("{:.1}x", retrain_ms / ms),
        ]);
    }
    print_table(
        &format!(
            "Ablation 1 — DeltaGrad exact-evaluation period T0 (retrain = {retrain_ms:.1} ms)"
        ),
        &header,
        &rows,
    );
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    write_results_csv("ablation_deltagrad_t0", &header_refs, &rows);
}

fn hessian_batch(scale: usize) {
    let (model, obj, prepared, base, _) = fixture(scale);
    let data = &prepared.split.train;
    let val = &prepared.split.val;
    let pool = data.uncleaned_indices();

    // Reference: exact (full-Hessian) solve.
    let exact_cfg = InflConfig {
        hessian_batch: 0,
        ..InflConfig::default()
    };
    let v_exact = influence_vector(&model, &obj, data, val, &base.w, &exact_cfg);
    let mut top_exact = rank_infl_with_vector(&model, data, &base.w, &v_exact, &pool, obj.gamma);
    top_exact.truncate(10);
    let exact_set: Vec<usize> = top_exact.iter().map(|s| s.index).collect();

    let header: Vec<String> = [
        "hessian batch",
        "CG time (ms)",
        "top-10 overlap with exact",
        "rel. v error",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for batch in [128usize, 512, 2048, 8192] {
        let cfg = InflConfig {
            hessian_batch: batch,
            ..InflConfig::default()
        };
        let start = Instant::now();
        let v = influence_vector(&model, &obj, data, val, &base.w, &cfg);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let mut top = rank_infl_with_vector(&model, data, &base.w, &v, &pool, obj.gamma);
        top.truncate(10);
        let overlap = top.iter().filter(|s| exact_set.contains(&s.index)).count();
        let err = vector::distance(&v, &v_exact) / vector::norm2(&v_exact).max(1e-12);
        rows.push(vec![
            batch.to_string(),
            format!("{ms:.2}"),
            format!("{overlap}/10"),
            format!("{err:.3}"),
        ]);
    }
    print_table(
        &format!(
            "Ablation 2 — Hessian subsample size for the CG solve (n = {})",
            data.len()
        ),
        &header,
        &rows,
    );
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    write_results_csv("ablation_hessian_batch", &header_refs, &rows);
}

fn increm_slack(scale: usize) {
    let (model, obj, prepared, base, sgd) = fixture(scale);
    let data = &prepared.split.train;
    let val = &prepared.split.val;
    let mut increm = IncremInfl::initialize(&model, data, &base.w);
    // Drift the model by two further epochs.
    let w_k = train(&model, &obj, data, &base.w, &SgdConfig { epochs: 2, ..sgd }).w;
    let v = influence_vector(&model, &obj, data, val, &w_k, &InflConfig::default());
    let pool = data.uncleaned_indices();
    let mut full = rank_infl_with_vector(&model, data, &w_k, &v, &pool, obj.gamma);
    full.truncate(10);
    let exact_set: Vec<usize> = full.iter().map(|s| s.index).collect();

    let header: Vec<String> = ["slack", "candidates", "pool", "contains exact top-10"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for slack in [0.25, 0.5, 1.0, 2.0] {
        increm.slack = slack;
        let (cands, stats) = increm.candidates(&model, data, &w_k, &v, &pool, 10, obj.gamma);
        let contains = exact_set.iter().all(|i| cands.contains(i));
        rows.push(vec![
            format!("{slack}"),
            stats.candidates.to_string(),
            stats.pool.to_string(),
            contains.to_string(),
        ]);
    }
    print_table(
        "Ablation 3 — Increm-Infl bound slack (1.0 = the paper's Theorem 1 interval)",
        &header,
        &rows,
    );
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    write_results_csv("ablation_increm_slack", &header_refs, &rows);
}

fn label_model_temperature(scale: usize) {
    let spec = chef_data::by_name("Twitter", scale).unwrap();
    let header: Vec<String> = [
        "temperature",
        "weak error rate",
        "mean label entropy (nats)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for temp in [1.0f64, 2.0, 2.83, 5.0, 10.0] {
        let mut split = chef_data::generate(&spec, 3);
        // Re-weaken with an explicit temperature by rebuilding the label
        // model path at the requested calibration.
        label_model_labels_with_temp(&mut split.train, spec.weak_quality, temp);
        let err = split.train.weak_label_error_rate().unwrap_or(f64::NAN);
        let entropy: f64 = (0..split.train.len())
            .map(|i| split.train.label(i).entropy())
            .sum::<f64>()
            / split.train.len() as f64;
        rows.push(vec![
            format!("{temp}"),
            format!("{err:.3}"),
            format!("{entropy:.3}"),
        ]);
    }
    print_table(
        "Ablation 4 — label-model calibration temperature (default = √num_lfs ≈ 2.83)",
        &header,
        &rows,
    );
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    write_results_csv("ablation_label_model_temperature", &header_refs, &rows);
}

/// `chef_weak::label_model_labels` with an explicit temperature (the
/// public entry point fixes it at √num_lfs).
fn label_model_labels_with_temp(train: &mut chef_model::Dataset, quality: f64, temp: f64) {
    let cfg = WeakenConfig::default();
    label_model_labels(train, quality, &cfg);
    // Re-temper the installed posteriors: T' = temp relative to the
    // default √num_lfs — raise each probability vector to the power
    // (default / temp) and renormalize.
    let default_temp = (cfg.num_lfs as f64).sqrt();
    let exponent = default_temp / temp;
    for i in 0..train.len() {
        let probs: Vec<f64> = train
            .label(i)
            .probs()
            .iter()
            .map(|p| p.max(1e-12).powf(exponent))
            .collect();
        train.set_label(i, chef_model::SoftLabel::from_weights(&probs));
        train.mark_uncleaned(i);
    }
}
