//! Out-of-core scaling bench: one full cleaning round on an in-memory
//! dataset vs the same data served from a memory-mapped `store.v1`
//! directory, at n ∈ {50k, 200k, 1M}.
//!
//! For each size the parent **streams** a training store to disk once
//! (`generate_train_store`, so the parent itself never materializes the
//! features), then re-execs the current binary twice — once per mode —
//! because peak RSS (`VmHWM` in `/proc/self/status`) is a per-process
//! high-water mark that cannot be reset between measurements:
//!
//! * `memory`: the child materializes the store into a plain [`Dataset`](chef_model::Dataset)
//!   and runs the round on it (the pre-§15 configuration),
//! * `mmap`: the child runs the round directly on the [`MmapStore`]
//!   with a bounded residency window — features never fully resident.
//!
//! Both children weaken labels with the same seed and report a
//! **selection fingerprint** (FNV-1a over every selected index +
//! suggested label + the final parameter bits + final F1 bits); the
//! parent asserts the two modes match bit-for-bit before writing
//! `BENCH_oocs.json` — the document is only ever written for runs where
//! out-of-core execution provably changed nothing but the memory
//! footprint. See DESIGN.md §15 and EXPERIMENTS.md (`oocs_scale`).
//!
//! Usage: `cargo run --release -p chef-bench --bin oocs_scale`
//! (`--quick` for a 50k-only CI smoke with no JSON output, `--sizes
//! a,b,c` to override the size list, `--dir PATH` for the scratch
//! directory, which defaults to `target/oocs_scale-<pid>` and is
//! removed on exit).

use chef_core::{
    AnnotationConfig, ConstructorKind, InflSelector, LabelStrategy, Pipeline, PipelineConfig,
    StorePipelineReport,
};
use chef_data::store::write_store;
use chef_data::{generate_train_store, DatasetKind, DatasetSpec, MmapStore, StoreOptions};
use chef_model::{DatasetStore, LogisticRegression, WeightedObjective};
use chef_obs::JsonWriter;
use chef_train::SgdConfig;
use chef_weak::random_probabilistic_labels;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Instant;

/// Sentinel argument marking a re-exec'd measurement child.
const CHILD_FLAG: &str = "--_oocs-child";
/// Prefix of the one stdout line carrying a child's JSON fragment.
const RESULT_MARKER: &str = "@@OOCS_RESULT ";

const SEED: u64 = 1;
const DIM: usize = 32;
const CHUNK_ROWS: usize = 8192;
const RESIDENCY_CHUNKS: usize = 32;
/// One cleaning round: budget == round_size.
const ROUND: usize = 16;

fn spec_for(n: usize) -> DatasetSpec {
    DatasetSpec {
        name: "oocs_scale",
        kind: DatasetKind::FullyClean,
        train: n,
        val: 2_000,
        test: 1_000,
        dim: DIM,
        num_classes: 2,
        class_sep: 1.0,
        positive_rate: 0.45,
        truth_noise: 0.0,
        weak_quality: 0.5,
        annotator_error: 0.05,
    }
}

fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        budget: ROUND,
        round_size: ROUND,
        objective: WeightedObjective::new(0.8, 0.2),
        sgd: SgdConfig {
            lr: 0.1,
            // Two epochs keep the 1M-row child's wall time in minutes
            // while still exercising a full SGD stream per round.
            epochs: 2,
            batch_size: 512,
            seed: SEED,
            cache_provenance: true,
        },
        constructor: ConstructorKind::Retrain,
        annotation: AnnotationConfig {
            strategy: LabelStrategy::HumansOnly(3),
            error_rate: 0.05,
            seed: SEED ^ 0x77,
        },
        ..PipelineConfig::default()
    }
}

/// Peak resident set of this process in bytes (`VmHWM`), the
/// high-water mark the kernel tracks for us — covers every allocation
/// and faulted-in mapped page since the process started.
fn peak_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Bit-exact digest of everything the cleaning round decided: the
/// selected samples (with suggestions), the final parameters, and the
/// F1s. Two runs with equal fingerprints made identical choices.
fn fingerprint(report: &StorePipelineReport) -> String {
    let mut h = FNV_OFFSET;
    for round in &report.rounds {
        for sel in &round.selected {
            h = fnv_fold(h, &(sel.index as u64).to_le_bytes());
            let suggested = sel.suggested.map_or(0u64, |c| c as u64 + 1);
            h = fnv_fold(h, &suggested.to_le_bytes());
        }
        h = fnv_fold(h, &round.val_f1.to_bits().to_le_bytes());
        h = fnv_fold(h, &round.test_f1.to_bits().to_le_bytes());
    }
    for &w in &report.final_w {
        h = fnv_fold(h, &w.to_bits().to_le_bytes());
    }
    format!("{h:016x}")
}

fn dirs_for(root: &Path, n: usize) -> (PathBuf, PathBuf, PathBuf) {
    (
        root.join(format!("n{n}-train")),
        root.join(format!("n{n}-val")),
        root.join(format!("n{n}-test")),
    )
}

fn run_child(args: &[String]) {
    let n: usize = chef_bench::arg_value(args, "--n", 0);
    let mode = args
        .iter()
        .position(|a| a == "--mode")
        .and_then(|i| args.get(i + 1))
        .expect("child needs --mode")
        .clone();
    let root = PathBuf::from(
        args.iter()
            .position(|a| a == "--dir")
            .and_then(|i| args.get(i + 1))
            .expect("child needs --dir"),
    );
    let (train_dir, val_dir, test_dir) = dirs_for(&root, n);

    // Val/test are small and trusted: materialize for both modes.
    let val = MmapStore::open(&val_dir)
        .expect("open val store")
        .to_dataset();
    let test = MmapStore::open(&test_dir)
        .expect("open test store")
        .to_dataset();

    let model = LogisticRegression::new(DIM, 2);
    let mut selector = InflSelector::full();
    let pipeline = Pipeline::new(pipeline_config());
    let weaken_seed = SEED ^ 0xabcd;

    let start = Instant::now();
    let report = match mode.as_str() {
        "memory" => {
            // Pre-§15 configuration: everything heap-resident. The
            // bounded-residency open keeps the *materialization* scan
            // from counting the whole file against this child's RSS —
            // only the owned Dataset should.
            let store = MmapStore::open_with(
                &train_dir,
                StoreOptions {
                    residency_chunks: RESIDENCY_CHUNKS,
                    ..StoreOptions::default()
                },
            )
            .expect("open train store");
            let mut data = store.to_dataset();
            drop(store);
            random_probabilistic_labels(&mut data, weaken_seed);
            pipeline.run_store(&model, &mut data, &val, &test, &mut selector)
        }
        "mmap" => {
            let mut store = MmapStore::open_with(
                &train_dir,
                StoreOptions {
                    residency_chunks: RESIDENCY_CHUNKS,
                    ..StoreOptions::default()
                },
            )
            .expect("open train store");
            random_probabilistic_labels(&mut store, weaken_seed);
            pipeline.run_store(&model, &mut store, &val, &test, &mut selector)
        }
        other => panic!("unknown --mode {other:?}"),
    };
    let wall_s = start.elapsed().as_secs_f64();

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("mode", &mode);
    w.field_u64("n", n as u64);
    w.field_f64("wall_s", wall_s);
    w.field_f64("init_s", report.init_time.as_secs_f64());
    w.field_f64(
        "select_s",
        report
            .rounds
            .iter()
            .map(|r| r.select_time.as_secs_f64())
            .sum(),
    );
    w.field_u64("peak_rss_bytes", peak_rss_bytes());
    w.field_u64("cleaned", report.cleaned_total as u64);
    w.field_f64("val_f1", report.final_val_f1());
    w.field_f64("test_f1", report.final_test_f1());
    w.field_str("fingerprint", &fingerprint(&report));
    w.end_object();
    println!("{RESULT_MARKER}{}", w.finish());
}

/// Re-exec this binary for one `(n, mode)` cell, forwarding its chatter
/// and returning the marker fragment.
fn spawn_child(n: usize, mode: &str, root: &Path) -> String {
    let exe = std::env::current_exe().expect("current_exe");
    let out = Command::new(&exe)
        .arg(CHILD_FLAG)
        .args(["--n", &n.to_string(), "--mode", mode])
        .arg("--dir")
        .arg(root)
        .stderr(Stdio::inherit())
        .output()
        .expect("spawn oocs child");
    assert!(
        out.status.success(),
        "oocs child (n={n}, mode={mode}) failed: {}",
        out.status
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut fragment = None;
    for line in stdout.lines() {
        match line.strip_prefix(RESULT_MARKER) {
            Some(f) => fragment = Some(f.to_string()),
            None => println!("[{mode} n={n}] {line}"),
        }
    }
    fragment.unwrap_or_else(|| panic!("child (n={n}, mode={mode}) emitted no result marker"))
}

fn field_str(fragment: &str, key: &str) -> String {
    chef_obs::parse_json(fragment)
        .expect("child fragment parses")
        .get(key)
        .unwrap_or_else(|| panic!("fragment missing {key}"))
        .as_str()
        .expect("string field")
        .to_string()
}

fn field_u64(fragment: &str, key: &str) -> u64 {
    chef_obs::parse_json(fragment)
        .expect("child fragment parses")
        .get(key)
        .unwrap_or_else(|| panic!("fragment missing {key}"))
        .as_f64()
        .expect("numeric field") as u64
}

fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == CHILD_FLAG) {
        run_child(&args);
        return;
    }

    let quick = args.iter().any(|a| a == "--quick");
    let sizes: Vec<usize> = match args
        .iter()
        .position(|a| a == "--sizes")
        .and_then(|i| args.get(i + 1))
    {
        Some(list) => list
            .split(',')
            .map(|s| s.trim().parse().expect("--sizes: bad size"))
            .collect(),
        None if quick => vec![50_000],
        None => vec![50_000, 200_000, 1_000_000],
    };
    let root = args
        .iter()
        .position(|a| a == "--dir")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            workspace_root()
                .join("target")
                .join(format!("oocs_scale-{}", std::process::id()))
        });
    println!(
        "oocs_scale: sizes={sizes:?} dim={DIM} chunk_rows={CHUNK_ROWS} residency_chunks={RESIDENCY_CHUNKS} scratch={}",
        root.display()
    );

    struct Row {
        n: usize,
        fingerprint: String,
        memory: String,
        mmap: String,
    }
    let mut rows = Vec::new();
    for &n in &sizes {
        let spec = spec_for(n);
        let (train_dir, val_dir, test_dir) = dirs_for(&root, n);
        println!("n={n}: streaming store to {}", train_dir.display());
        let (manifest, val, test) =
            generate_train_store(&spec, SEED, &train_dir, CHUNK_ROWS).expect("generate store");
        write_store(&val, &val_dir, CHUNK_ROWS).expect("write val store");
        write_store(&test, &test_dir, CHUNK_ROWS).expect("write test store");
        drop((val, test));
        println!(
            "n={n}: {} shards, {} MB of features",
            manifest.chunks.len(),
            n * DIM * 8 / (1 << 20)
        );

        let memory = spawn_child(n, "memory", &root);
        let mmap = spawn_child(n, "mmap", &root);

        let fp_mem = field_str(&memory, "fingerprint");
        let fp_map = field_str(&mmap, "fingerprint");
        assert_eq!(
            fp_mem, fp_map,
            "n={n}: in-memory and mmap runs diverged — selector output is not bit-identical"
        );
        let (rss_mem, rss_map) = (
            field_u64(&memory, "peak_rss_bytes"),
            field_u64(&mmap, "peak_rss_bytes"),
        );
        println!(
            "n={n}: fingerprints match ({fp_mem}); peak RSS memory={} MB mmap={} MB ({:.2}x)",
            rss_mem / (1 << 20),
            rss_map / (1 << 20),
            rss_mem as f64 / rss_map.max(1) as f64,
        );
        rows.push(Row {
            n,
            fingerprint: fp_mem,
            memory,
            mmap,
        });

        // Disk hygiene: drop this size's shards before generating the
        // next (1M alone is a quarter GB of features).
        for d in [&train_dir, &val_dir, &test_dir] {
            std::fs::remove_dir_all(d).expect("remove store dir");
        }
    }
    if root.exists() {
        std::fs::remove_dir_all(&root).expect("remove scratch dir");
    }

    if quick {
        println!("quick mode: skipping BENCH_oocs.json");
        return;
    }

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", chef_obs::SCHEMA_VERSION);
    w.field_str("kind", "oocs_scale");
    w.key("context");
    w.begin_object();
    w.field_u64("dim", DIM as u64);
    w.field_u64("chunk_rows", CHUNK_ROWS as u64);
    w.field_u64("residency_chunks", RESIDENCY_CHUNKS as u64);
    w.field_u64("round_size", ROUND as u64);
    w.field_u64("sgd_epochs", 2);
    w.field_u64("seed", SEED);
    w.field_str("selector", "Infl (full ranking, sharded top-b merge)");
    w.field_str(
        "rss_metric",
        "VmHWM from /proc/self/status, per re-exec'd child",
    );
    w.field_u64(
        "available_cores",
        chef_bench::sweep::available_cores() as u64,
    );
    w.field_bool("parallel_feature", cfg!(feature = "parallel"));
    w.end_object();
    w.key("results");
    w.begin_array();
    for row in &rows {
        w.begin_object();
        w.field_u64("n", row.n as u64);
        w.field_u64("feature_bytes", (row.n * DIM * 8) as u64);
        w.field_str("fingerprint", &row.fingerprint);
        w.field_bool("fingerprint_match", true);
        let (rss_mem, rss_map) = (
            field_u64(&row.memory, "peak_rss_bytes"),
            field_u64(&row.mmap, "peak_rss_bytes"),
        );
        w.field_f64("peak_rss_ratio", rss_mem as f64 / rss_map.max(1) as f64);
        w.key("memory");
        w.raw(&row.memory);
        w.key("mmap");
        w.raw(&row.mmap);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let path = workspace_root().join("BENCH_oocs.json");
    std::fs::write(&path, w.finish() + "\n").expect("write BENCH_oocs.json");
    println!("wrote {}", path.display());
}
