//! Out-of-core scaling bench: one full cleaning round on an in-memory
//! dataset vs the same data served from a memory-mapped store
//! directory, at n ∈ {50k, 200k, 1M} plus a disk-budget-gated n=10M
//! point, with a **cold-open lane** measuring open → first scored
//! block under eager vs lazy integrity.
//!
//! For each size the parent **streams** a training store to disk once
//! (`generate_train_store`, so the parent itself never materializes the
//! features), then re-execs the current binary once per measurement —
//! peak RSS (`VmHWM` in `/proc/self/status`) is a per-process
//! high-water mark that cannot be reset between measurements:
//!
//! * `memory`: the child materializes the store into a plain [`Dataset`](chef_model::Dataset)
//!   and runs the round on it (the pre-§15 configuration),
//! * `mmap-eager`: the round runs directly on the [`MmapStore`] with a
//!   bounded residency window and open-time checksum verification,
//! * `mmap-lazy`: same, but `IntegrityMode::LazyFirstTouch` + the
//!   background verify-and-warm prefetcher,
//! * `mmap-lazy-nopf`: lazy integrity with the prefetcher disabled
//!   (the serial twin of the pipeline),
//! * `cold-eager` / `cold-lazy`: no cleaning round — time from
//!   `open_with` to the first Infl-scored block (256 rows, fixed probe
//!   vectors), the cold-open lane.
//!
//! Every full-round child weakens labels with the same seed and reports
//! a **selection fingerprint** (FNV-1a over every selected index +
//! suggested label + the final parameter bits + final F1 bits); the
//! parent asserts all modes match bit-for-bit before writing
//! `BENCH_oocs.json` — the document is only ever written for runs where
//! out-of-core execution (and integrity laziness, and prefetch overlap)
//! provably changed nothing but footprint and wall time. The cold-open
//! children fingerprint their scored block the same way. See DESIGN.md
//! §15 and EXPERIMENTS.md (`oocs_scale`).
//!
//! Usage: `cargo run --release -p chef-bench --bin oocs_scale`
//! (`--quick` for a 50k-only CI smoke with no JSON output, `--integrity
//! eager|lazy` to pick the quick smoke's mmap mode, `--force-pread` to
//! smoke the positional-read fallback, `--sizes a,b,c` to override the
//! size list, `--no-ten-m` to skip the n=10M attempt, `--dir PATH` for
//! the scratch directory, which defaults to `target/oocs_scale-<pid>`
//! and is removed on exit).

use chef_core::{
    rank_infl_with_vector, AnnotationConfig, ConstructorKind, InflScore, InflSelector,
    LabelStrategy, Pipeline, PipelineConfig, StorePipelineReport,
};
use chef_data::store::write_store;
use chef_data::{
    generate_train_store, DatasetKind, DatasetSpec, IntegrityMode, MmapStore, StoreOptions,
};
use chef_model::{DatasetStore, LogisticRegression, Model, WeightedObjective};
use chef_obs::JsonWriter;
use chef_train::SgdConfig;
use chef_weak::random_probabilistic_labels;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Instant;

/// Sentinel argument marking a re-exec'd measurement child.
const CHILD_FLAG: &str = "--_oocs-child";
/// Prefix of the one stdout line carrying a child's JSON fragment.
const RESULT_MARKER: &str = "@@OOCS_RESULT ";

/// Rows scored by the cold-open probe (one selector block's worth).
const COLD_PROBE_ROWS: usize = 256;
/// Scratch-disk safety factor for the n=10M gate: shards + labels +
/// val/test stores + filesystem slack.
const TEN_M: usize = 10_000_000;

const SEED: u64 = 1;
const DIM: usize = 32;
const CHUNK_ROWS: usize = 8192;
const RESIDENCY_CHUNKS: usize = 32;
/// One cleaning round: budget == round_size.
const ROUND: usize = 16;

fn spec_for(n: usize) -> DatasetSpec {
    DatasetSpec {
        name: "oocs_scale",
        kind: DatasetKind::FullyClean,
        train: n,
        val: 2_000,
        test: 1_000,
        dim: DIM,
        num_classes: 2,
        class_sep: 1.0,
        positive_rate: 0.45,
        truth_noise: 0.0,
        weak_quality: 0.5,
        annotator_error: 0.05,
    }
}

fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        budget: ROUND,
        round_size: ROUND,
        objective: WeightedObjective::new(0.8, 0.2),
        sgd: SgdConfig {
            lr: 0.1,
            // Two epochs keep the 1M-row child's wall time in minutes
            // while still exercising a full SGD stream per round.
            epochs: 2,
            batch_size: 512,
            seed: SEED,
            cache_provenance: true,
        },
        constructor: ConstructorKind::Retrain,
        annotation: AnnotationConfig {
            strategy: LabelStrategy::HumansOnly(3),
            error_rate: 0.05,
            seed: SEED ^ 0x77,
        },
        ..PipelineConfig::default()
    }
}

/// Peak resident set of this process in bytes (`VmHWM`), the
/// high-water mark the kernel tracks for us — covers every allocation
/// and faulted-in mapped page since the process started.
fn peak_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Bit-exact digest of everything the cleaning round decided: the
/// selected samples (with suggestions), the final parameters, and the
/// F1s. Two runs with equal fingerprints made identical choices.
fn fingerprint(report: &StorePipelineReport) -> String {
    let mut h = FNV_OFFSET;
    for round in &report.rounds {
        for sel in &round.selected {
            h = fnv_fold(h, &(sel.index as u64).to_le_bytes());
            let suggested = sel.suggested.map_or(0u64, |c| c as u64 + 1);
            h = fnv_fold(h, &suggested.to_le_bytes());
        }
        h = fnv_fold(h, &round.val_f1.to_bits().to_le_bytes());
        h = fnv_fold(h, &round.test_f1.to_bits().to_le_bytes());
    }
    for &w in &report.final_w {
        h = fnv_fold(h, &w.to_bits().to_le_bytes());
    }
    format!("{h:016x}")
}

fn dirs_for(root: &Path, n: usize) -> (PathBuf, PathBuf, PathBuf) {
    (
        root.join(format!("n{n}-train")),
        root.join(format!("n{n}-val")),
        root.join(format!("n{n}-test")),
    )
}

/// Store options for an mmap-mode child.
fn store_opts(
    integrity: IntegrityMode,
    background_prefetch: bool,
    force_pread: bool,
) -> StoreOptions {
    StoreOptions {
        residency_chunks: RESIDENCY_CHUNKS,
        force_pread,
        integrity,
        background_prefetch,
    }
}

/// Bit-exact digest of a scored block (cold-open lane): every index,
/// suggestion and score bit pattern.
fn score_fingerprint(scores: &[InflScore]) -> String {
    let mut h = FNV_OFFSET;
    for s in scores {
        h = fnv_fold(h, &(s.index as u64).to_le_bytes());
        h = fnv_fold(h, &(s.suggested as u64).to_le_bytes());
        h = fnv_fold(h, &s.score.to_bits().to_le_bytes());
    }
    format!("{h:016x}")
}

/// Cold-open probe: time from `open_with` until the first block of
/// Infl scores exists. Deterministic probe vectors stand in for the
/// trained parameters (a real run would need init training first,
/// which is identical across integrity modes and would drown the
/// open-path difference this lane isolates).
fn run_cold_probe(train_dir: &Path, n: usize, integrity: IntegrityMode, mode: &str) {
    let model = LogisticRegression::new(DIM, 2);
    let m = model.num_params();
    let w: Vec<f64> = (0..m).map(|j| 0.01 * ((j % 7) as f64 - 3.0)).collect();
    let v: Vec<f64> = (0..m).map(|j| 0.005 * ((j % 5) as f64 - 2.0)).collect();
    let candidates: Vec<usize> = (0..COLD_PROBE_ROWS.min(n)).collect();

    let t0 = Instant::now();
    let store =
        MmapStore::open_with(train_dir, store_opts(integrity, false, false)).expect("open store");
    let open_s = t0.elapsed().as_secs_f64();
    let scores = rank_infl_with_vector(&model, &store, &w, &v, &candidates, 0.2);
    let cold_s = t0.elapsed().as_secs_f64();
    let io = store.io_stats().expect("mmap store reports io stats");

    let mut out = JsonWriter::new();
    out.begin_object();
    out.field_str("mode", mode);
    out.field_u64("n", n as u64);
    out.field_f64("open_s", open_s);
    out.field_f64("cold_open_s", cold_s);
    out.field_u64("probe_rows", candidates.len() as u64);
    out.field_u64("verify_ms", io.verify_ms);
    out.field_u64("blocks_verified", io.blocks_verified);
    out.field_u64("peak_rss_bytes", peak_rss_bytes());
    out.field_str("fingerprint", &score_fingerprint(&scores));
    out.end_object();
    println!("{RESULT_MARKER}{}", out.finish());
}

fn run_child(args: &[String]) {
    let n: usize = chef_bench::arg_value(args, "--n", 0);
    let mode = args
        .iter()
        .position(|a| a == "--mode")
        .and_then(|i| args.get(i + 1))
        .expect("child needs --mode")
        .clone();
    let force_pread = args.iter().any(|a| a == "--force-pread");
    let root = PathBuf::from(
        args.iter()
            .position(|a| a == "--dir")
            .and_then(|i| args.get(i + 1))
            .expect("child needs --dir"),
    );
    let (train_dir, val_dir, test_dir) = dirs_for(&root, n);

    // Cold-open probes never run the pipeline and need no val/test.
    match mode.as_str() {
        "cold-eager" => return run_cold_probe(&train_dir, n, IntegrityMode::Eager, &mode),
        "cold-lazy" => return run_cold_probe(&train_dir, n, IntegrityMode::LazyFirstTouch, &mode),
        _ => {}
    }

    // Val/test are small and trusted: materialize for every mode.
    let val = MmapStore::open(&val_dir)
        .expect("open val store")
        .to_dataset();
    let test = MmapStore::open(&test_dir)
        .expect("open test store")
        .to_dataset();

    let model = LogisticRegression::new(DIM, 2);
    let mut selector = InflSelector::full();
    let pipeline = Pipeline::new(pipeline_config());
    let weaken_seed = SEED ^ 0xabcd;

    // (integrity, background_prefetch) per mmap mode; `memory` opens
    // eagerly too — the pre-§15 configuration verified everything
    // before materializing.
    let mmap_opts = match mode.as_str() {
        "memory" | "mmap-eager" => store_opts(IntegrityMode::Eager, true, force_pread),
        "mmap-lazy" => store_opts(IntegrityMode::LazyFirstTouch, true, force_pread),
        "mmap-lazy-nopf" => store_opts(IntegrityMode::LazyFirstTouch, false, force_pread),
        other => panic!("unknown --mode {other:?}"),
    };

    let start = Instant::now();
    let mut store_io = None;
    let report = if mode == "memory" {
        // Pre-§15 configuration: everything heap-resident. The
        // bounded-residency open keeps the *materialization* scan
        // from counting the whole file against this child's RSS —
        // only the owned Dataset should.
        let store = MmapStore::open_with(&train_dir, mmap_opts).expect("open train store");
        let mut data = store.to_dataset();
        drop(store);
        random_probabilistic_labels(&mut data, weaken_seed);
        pipeline.run_store(&model, &mut data, &val, &test, &mut selector)
    } else {
        let mut store = MmapStore::open_with(&train_dir, mmap_opts).expect("open train store");
        random_probabilistic_labels(&mut store, weaken_seed);
        let report = pipeline.run_store(&model, &mut store, &val, &test, &mut selector);
        store_io = store.io_stats();
        report
    };
    let wall_s = start.elapsed().as_secs_f64();

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("mode", &mode);
    w.field_u64("n", n as u64);
    w.field_f64("wall_s", wall_s);
    w.field_f64("init_s", report.init_time.as_secs_f64());
    w.field_f64(
        "select_s",
        report
            .rounds
            .iter()
            .map(|r| r.select_time.as_secs_f64())
            .sum(),
    );
    w.field_u64("peak_rss_bytes", peak_rss_bytes());
    w.field_u64("cleaned", report.cleaned_total as u64);
    w.field_f64("val_f1", report.final_val_f1());
    w.field_f64("test_f1", report.final_test_f1());
    if let Some(io) = store_io {
        w.field_u64("verify_ms", io.verify_ms);
        w.field_u64("blocks_verified", io.blocks_verified);
        w.field_u64("lazy_verify_hits", io.lazy_verify_hits);
        w.field_u64("prefetch_overlap_ms", io.prefetch_overlap_ms);
    }
    w.field_str("fingerprint", &fingerprint(&report));
    w.end_object();
    println!("{RESULT_MARKER}{}", w.finish());
}

/// Re-exec this binary for one `(n, mode)` cell, forwarding its chatter
/// and returning the marker fragment.
fn spawn_child(n: usize, mode: &str, root: &Path, extra: &[&str]) -> String {
    let exe = std::env::current_exe().expect("current_exe");
    let out = Command::new(&exe)
        .arg(CHILD_FLAG)
        .args(["--n", &n.to_string(), "--mode", mode])
        .arg("--dir")
        .arg(root)
        .args(extra)
        .stderr(Stdio::inherit())
        .output()
        .expect("spawn oocs child");
    assert!(
        out.status.success(),
        "oocs child (n={n}, mode={mode}) failed: {}",
        out.status
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut fragment = None;
    for line in stdout.lines() {
        match line.strip_prefix(RESULT_MARKER) {
            Some(f) => fragment = Some(f.to_string()),
            None => println!("[{mode} n={n}] {line}"),
        }
    }
    fragment.unwrap_or_else(|| panic!("child (n={n}, mode={mode}) emitted no result marker"))
}

fn field_str(fragment: &str, key: &str) -> String {
    chef_obs::parse_json(fragment)
        .expect("child fragment parses")
        .get(key)
        .unwrap_or_else(|| panic!("fragment missing {key}"))
        .as_str()
        .expect("string field")
        .to_string()
}

fn field_u64(fragment: &str, key: &str) -> u64 {
    field_f64(fragment, key) as u64
}

fn field_f64(fragment: &str, key: &str) -> f64 {
    chef_obs::parse_json(fragment)
        .expect("child fragment parses")
        .get(key)
        .unwrap_or_else(|| panic!("fragment missing {key}"))
        .as_f64()
        .expect("numeric field")
}

/// Free bytes on the filesystem holding `path` (via `df`), or `None`
/// if that could not be determined — in which case the n=10M lane is
/// skipped rather than risking filling the disk.
fn free_disk_bytes(path: &Path) -> Option<u64> {
    let out = Command::new("df")
        .args(["-B1", "--output=avail"])
        .arg(path)
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .nth(1)?
        .trim()
        .parse()
        .ok()
}

fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

/// Stream the train/val/test stores for one size into the scratch root.
fn generate_stores(n: usize, root: &Path) {
    let spec = spec_for(n);
    let (train_dir, val_dir, test_dir) = dirs_for(root, n);
    println!("n={n}: streaming store to {}", train_dir.display());
    let (manifest, val, test) =
        generate_train_store(&spec, SEED, &train_dir, CHUNK_ROWS).expect("generate store");
    write_store(&val, &val_dir, CHUNK_ROWS).expect("write val store");
    write_store(&test, &test_dir, CHUNK_ROWS).expect("write test store");
    drop((val, test));
    println!(
        "n={n}: {} shards, {} MB of features",
        manifest.chunks.len(),
        n * DIM * 8 / (1 << 20)
    );
}

/// Disk hygiene: drop one size's shards before generating the next
/// (1M alone is a quarter GB of features).
fn cleanup_stores(n: usize, root: &Path) {
    let (train_dir, val_dir, test_dir) = dirs_for(root, n);
    for d in [&train_dir, &val_dir, &test_dir] {
        std::fs::remove_dir_all(d).expect("remove store dir");
    }
}

/// Cold-open lane: eager vs lazy open-to-first-scored-block, with the
/// scored block asserted bit-identical. Returns the two fragments and
/// the eager/lazy speedup.
fn run_cold_lane(n: usize, root: &Path) -> (String, String, f64) {
    let cold_eager = spawn_child(n, "cold-eager", root, &[]);
    let cold_lazy = spawn_child(n, "cold-lazy", root, &[]);
    assert_eq!(
        field_str(&cold_eager, "fingerprint"),
        field_str(&cold_lazy, "fingerprint"),
        "n={n}: cold-open scored block differs between Eager and LazyFirstTouch"
    );
    let (eager_s, lazy_s) = (
        field_f64(&cold_eager, "cold_open_s"),
        field_f64(&cold_lazy, "cold_open_s"),
    );
    let speedup = eager_s / lazy_s.max(1e-9);
    println!(
        "n={n}: cold-open eager={eager_s:.3}s lazy={lazy_s:.3}s ({speedup:.1}x, scored block bit-identical)"
    );
    (cold_eager, cold_lazy, speedup)
}

struct Row {
    n: usize,
    fingerprint: String,
    /// `(json key, child fragment)` per full-round mode that ran.
    modes: Vec<(&'static str, String)>,
    /// `(cold-eager fragment, cold-lazy fragment, speedup)`.
    cold: (String, String, f64),
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == CHILD_FLAG) {
        run_child(&args);
        return;
    }

    let quick = args.iter().any(|a| a == "--quick");
    let force_pread = args.iter().any(|a| a == "--force-pread");
    let no_ten_m = args.iter().any(|a| a == "--no-ten-m");
    let integrity_lane = args
        .iter()
        .position(|a| a == "--integrity")
        .and_then(|i| args.get(i + 1))
        .map_or("eager", String::as_str)
        .to_string();
    let sizes: Vec<usize> = match args
        .iter()
        .position(|a| a == "--sizes")
        .and_then(|i| args.get(i + 1))
    {
        Some(list) => list
            .split(',')
            .map(|s| s.trim().parse().expect("--sizes: bad size"))
            .collect(),
        None if quick => vec![50_000],
        None => vec![50_000, 200_000, 1_000_000],
    };
    let root = args
        .iter()
        .position(|a| a == "--dir")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            workspace_root()
                .join("target")
                .join(format!("oocs_scale-{}", std::process::id()))
        });
    println!(
        "oocs_scale: sizes={sizes:?} dim={DIM} chunk_rows={CHUNK_ROWS} residency_chunks={RESIDENCY_CHUNKS} scratch={}",
        root.display()
    );

    if quick {
        // CI smoke: memory vs one mmap configuration (picked by
        // --integrity / --force-pread), fingerprints asserted, plus the
        // cold-open lane under lazy so the first-touch path runs.
        let mmap_mode = match integrity_lane.as_str() {
            "lazy" => "mmap-lazy",
            "eager" => "mmap-eager",
            other => panic!("--integrity must be eager or lazy, got {other:?}"),
        };
        let extra: Vec<&str> = if force_pread {
            vec!["--force-pread"]
        } else {
            vec![]
        };
        for &n in &sizes {
            generate_stores(n, &root);
            let memory = spawn_child(n, "memory", &root, &[]);
            let mmap = spawn_child(n, mmap_mode, &root, &extra);
            assert_eq!(
                field_str(&memory, "fingerprint"),
                field_str(&mmap, "fingerprint"),
                "n={n}: memory and {mmap_mode} runs diverged"
            );
            if !force_pread {
                run_cold_lane(n, &root);
            }
            println!("n={n}: quick smoke ok ({mmap_mode}, force_pread={force_pread})");
            cleanup_stores(n, &root);
        }
        if root.exists() {
            std::fs::remove_dir_all(&root).expect("remove scratch dir");
        }
        println!("quick mode: skipping BENCH_oocs.json");
        return;
    }

    let mut rows: Vec<Row> = Vec::new();
    for &n in &sizes {
        generate_stores(n, &root);
        let memory = spawn_child(n, "memory", &root, &[]);
        let mmap_eager = spawn_child(n, "mmap-eager", &root, &[]);
        let mmap_lazy = spawn_child(n, "mmap-lazy", &root, &[]);
        let mmap_nopf = spawn_child(n, "mmap-lazy-nopf", &root, &[]);
        let fp = field_str(&memory, "fingerprint");
        for (name, frag) in [
            ("mmap-eager", &mmap_eager),
            ("mmap-lazy", &mmap_lazy),
            ("mmap-lazy-nopf", &mmap_nopf),
        ] {
            assert_eq!(
                fp,
                field_str(frag, "fingerprint"),
                "n={n}: {name} diverged from the in-memory run"
            );
        }
        let (rss_mem, rss_lazy) = (
            field_u64(&memory, "peak_rss_bytes"),
            field_u64(&mmap_lazy, "peak_rss_bytes"),
        );
        println!(
            "n={n}: all four fingerprints match ({fp}); peak RSS memory={} MB mmap-lazy={} MB ({:.2}x)",
            rss_mem / (1 << 20),
            rss_lazy / (1 << 20),
            rss_mem as f64 / rss_lazy.max(1) as f64,
        );
        let cold = run_cold_lane(n, &root);
        if n >= 1_000_000 {
            assert!(
                cold.2 >= 5.0,
                "n={n}: cold-open speedup {:.2}x under LazyFirstTouch is below the 5x target",
                cold.2
            );
        }
        rows.push(Row {
            n,
            fingerprint: fp,
            modes: vec![
                ("memory", memory),
                ("mmap_eager", mmap_eager),
                ("mmap_lazy", mmap_lazy),
                ("mmap_lazy_noprefetch", mmap_nopf),
            ],
            cold,
        });
        cleanup_stores(n, &root);
    }

    // n=10M proof, gated on scratch-disk budget: ~2.4 GB of train
    // shards + labels + val/test + slack. The full-round matrix shrinks
    // to memory vs mmap-lazy (eager cold-open cost is still measured by
    // the cold lane; a full eager round at 10M adds nothing but hours).
    let mut ten_m_skip: Option<String> = None;
    if no_ten_m {
        ten_m_skip = Some("--no-ten-m".to_string());
    } else if !sizes.contains(&TEN_M) {
        let needed = ((TEN_M * DIM * 8) as f64 * 1.15 + 4e8) as u64;
        match free_disk_bytes(&workspace_root()) {
            Some(avail) if avail >= needed => {
                generate_stores(TEN_M, &root);
                let memory = spawn_child(TEN_M, "memory", &root, &[]);
                let mmap_lazy = spawn_child(TEN_M, "mmap-lazy", &root, &[]);
                let fp = field_str(&memory, "fingerprint");
                assert_eq!(
                    fp,
                    field_str(&mmap_lazy, "fingerprint"),
                    "n=10M: mmap-lazy diverged from the in-memory run"
                );
                let cold = run_cold_lane(TEN_M, &root);
                assert!(
                    cold.2 >= 5.0,
                    "n=10M: cold-open speedup {:.2}x is below the 5x target",
                    cold.2
                );
                rows.push(Row {
                    n: TEN_M,
                    fingerprint: fp,
                    modes: vec![("memory", memory), ("mmap_lazy", mmap_lazy)],
                    cold,
                });
                cleanup_stores(TEN_M, &root);
            }
            Some(avail) => {
                ten_m_skip = Some(format!(
                    "disk budget: {} MB free, need {} MB of scratch",
                    avail / (1 << 20),
                    needed / (1 << 20)
                ));
            }
            None => {
                ten_m_skip = Some("disk budget: free space could not be determined".to_string());
            }
        }
        if let Some(reason) = &ten_m_skip {
            println!("n=10M lane skipped ({reason}); re-emitting the measured trajectory only");
        }
    }
    if root.exists() {
        std::fs::remove_dir_all(&root).expect("remove scratch dir");
    }

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", chef_obs::SCHEMA_VERSION);
    w.field_str("kind", "oocs_scale");
    w.key("context");
    w.begin_object();
    w.field_u64("dim", DIM as u64);
    w.field_u64("chunk_rows", CHUNK_ROWS as u64);
    w.field_u64("residency_chunks", RESIDENCY_CHUNKS as u64);
    w.field_u64("round_size", ROUND as u64);
    w.field_u64("sgd_epochs", 2);
    w.field_u64("seed", SEED);
    w.field_u64("block_bytes", chef_data::store::DEFAULT_BLOCK_BYTES as u64);
    w.field_u64("cold_probe_rows", COLD_PROBE_ROWS as u64);
    w.field_str("selector", "Infl (full ranking, sharded top-b merge)");
    w.field_str(
        "rss_metric",
        "VmHWM from /proc/self/status, per re-exec'd child",
    );
    w.field_str(
        "cold_open_metric",
        "open_with -> first Infl-scored 256-row block, fixed probe vectors",
    );
    w.field_u64(
        "available_cores",
        chef_bench::sweep::available_cores() as u64,
    );
    w.field_bool("parallel_feature", cfg!(feature = "parallel"));
    w.end_object();
    w.key("ten_m");
    w.begin_object();
    w.field_bool("attempted", ten_m_skip.is_none());
    if let Some(reason) = &ten_m_skip {
        w.field_str("skipped_reason", reason);
    }
    w.end_object();
    w.key("results");
    w.begin_array();
    for row in &rows {
        w.begin_object();
        w.field_u64("n", row.n as u64);
        w.field_u64("feature_bytes", (row.n * DIM * 8) as u64);
        w.field_str("fingerprint", &row.fingerprint);
        w.field_bool("fingerprint_match", true);
        let rss_mem = field_u64(&row.modes[0].1, "peak_rss_bytes");
        let rss_lazy = row
            .modes
            .iter()
            .find(|(k, _)| *k == "mmap_lazy")
            .map(|(_, f)| field_u64(f, "peak_rss_bytes"))
            .unwrap_or(rss_mem);
        w.field_f64("peak_rss_ratio", rss_mem as f64 / rss_lazy.max(1) as f64);
        for (key, frag) in &row.modes {
            w.key(key);
            w.raw(frag);
        }
        w.key("cold_open");
        w.begin_object();
        w.field_f64("speedup", row.cold.2);
        w.field_bool("fingerprint_match", true);
        w.key("eager");
        w.raw(&row.cold.0);
        w.key("lazy");
        w.raw(&row.cold.1);
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let path = workspace_root().join("BENCH_oocs.json");
    std::fs::write(&path, w.finish() + "\n").expect("write BENCH_oocs.json");
    println!("wrote {}", path.display());
}
