//! Per-sample vs batched (GEMM-backed) training kernel wall time, plus
//! the provenance arena footprint and the warm-started iHVP solve.
//!
//! Three sections, emitted to `BENCH_train.json` at the workspace root
//! as a telemetry.v1 document (see DESIGN.md §10/§13). Each rayon pool
//! size runs in a re-exec'd child (see `chef_bench::sweep`); the
//! top-level sections are the one-thread run and `thread_sweep` carries
//! the thread-sensitive `grad` section per pool size (`trace_store` and
//! `cg` report layout and iteration counts, which threads don't change):
//!
//! * `grad` — one full epoch of minibatch gradients at
//!   n ∈ {10k, 50k, 200k}, comparing the pre-batching reference (one
//!   `grad_ws` call plus axpy per sample), the `grad_block` closed form
//!   on one thread (`batch_grad_serial`), and the dispatching public
//!   `batch_grad`. At one thread `batched` ≈ `batched_serial`; the
//!   baseline speedup comes from the B×C probability panel and the
//!   rank-1 `Xᵀ·P̃` accumulation, and threads multiply it.
//! * `trace_store` — rows/row length/payload bytes of the flat
//!   provenance arena a `cache_provenance` run records, with the
//!   per-iteration `Vec<Vec<f64>>` clone layout it replaced as the
//!   baseline (same payload plus one heap allocation per row).
//! * `cg` — a simulated multi-round cleaning loop: per round, the iHVP
//!   system is solved cold (x₀ = 0) and warm (x₀ = previous round's
//!   solution) at the same fixed tolerance; the totals show strictly
//!   fewer iterations with the warm start while the solutions stay
//!   within the CG tolerance of each other.
//!
//! Usage: `cargo run --release -p chef-bench --bin train_kernels`
//! (`--reps R` for best-of-R timing, `--threads 1,2,4` to pick the
//! sweep, `--quick` for a tiny CI-sized run with no JSON output).

use chef_bench::{prepare, sweep};
use chef_core::influence::{influence_vector_outcome_from, InflConfig};
use chef_data::{DatasetKind, DatasetSpec};
use chef_linalg::{vector, Workspace};
use chef_model::{Dataset, LogisticRegression, Model, WeightedObjective};
use chef_obs::JsonWriter;
use chef_train::{train, BatchPlan, SgdConfig};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Synthetic MIMIC-like spec with exactly `n` training samples.
fn spec_for(n: usize) -> DatasetSpec {
    DatasetSpec {
        name: "train_kernels",
        kind: DatasetKind::FullyClean,
        train: n,
        val: 500,
        test: 100,
        dim: 32,
        num_classes: 2,
        class_sep: 1.0,
        positive_rate: 0.45,
        truth_noise: 0.0,
        weak_quality: 0.5,
        annotator_error: 0.05,
    }
}

/// Best-of-`reps` wall time in milliseconds, after one untimed warmup
/// pass (first-touch page faults and cold caches otherwise bias
/// whichever variant runs first).
fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// The pre-batching minibatch gradient: one `grad_ws` call plus a
/// weighted axpy per sample, then objective normalization — what
/// `WeightedObjective::batch_grad_serial` did before `Model::grad_block`.
fn per_sample_batch_grad(
    model: &LogisticRegression,
    obj: &WeightedObjective,
    data: &Dataset,
    batch: &[usize],
    w: &[f64],
    out: &mut [f64],
    ws: &mut Workspace,
) {
    out.fill(0.0);
    let mut g = ws.take(out.len());
    for &i in batch {
        model.grad_ws(w, data.feature(i), data.label(i), &mut g, ws);
        vector::axpy(data.weight(i, obj.gamma), &g, out);
    }
    ws.put(g);
    if !batch.is_empty() {
        vector::scale(1.0 / batch.len() as f64, out);
    }
    vector::axpy(obj.l2, w, out);
}

struct GradCase {
    n: usize,
    per_sample_ms: f64,
    batched_serial_ms: f64,
    batched_ms: f64,
}

/// Time one full epoch of minibatch gradients (the SGD hot loop without
/// the parameter update, so the three variants see identical batches at
/// identical parameters).
fn run_grad_case(n: usize, reps: usize) -> GradCase {
    let prepared = prepare(&spec_for(n), 1);
    let data = &prepared.split.train;
    let model = LogisticRegression::new(data.dim(), 2);
    let obj = WeightedObjective::new(0.8, 0.2);
    let w = model.initial_params(3);
    let plan = BatchPlan::new(data.len(), 1024, 1, 2);
    let batches: Vec<Vec<usize>> = plan.iter().map(|(_, b)| b).collect();
    let mut out = vec![0.0; Model::num_params(&model)];
    let mut ws = Workspace::new();

    // Interleave the three variants inside each repetition (rather than
    // timing all reps of one variant back to back) so scheduler noise
    // and frequency excursions hit every variant equally; best-of-reps
    // then picks each variant's cleanest window.
    let mut per_sample_ms = f64::INFINITY;
    let mut batched_serial_ms = f64::INFINITY;
    let mut batched_ms = f64::INFINITY;
    for rep in 0..=reps {
        let warmup = rep == 0;
        let t = time_ms(1, || {
            for b in &batches {
                per_sample_batch_grad(&model, &obj, data, b, &w, &mut out, &mut ws);
            }
            out[0]
        });
        if !warmup {
            per_sample_ms = per_sample_ms.min(t);
        }
        let t = time_ms(1, || {
            for b in &batches {
                obj.batch_grad_serial(&model, data, b, &w, &mut out);
            }
            out[0]
        });
        if !warmup {
            batched_serial_ms = batched_serial_ms.min(t);
        }
        let t = time_ms(1, || {
            for b in &batches {
                obj.batch_grad(&model, data, b, &w, &mut out);
            }
            out[0]
        });
        if !warmup {
            batched_ms = batched_ms.min(t);
        }
    }
    GradCase {
        n,
        per_sample_ms,
        batched_serial_ms,
        batched_ms,
    }
}

struct TraceCase {
    n: usize,
    rows: usize,
    row_len: usize,
    arena_bytes: usize,
    arena_allocations: usize,
    nested_bytes: usize,
    nested_allocations: usize,
}

/// Record a provenance-cached training run and report the arena
/// footprint against the per-row `Vec<Vec<f64>>` layout it replaced
/// (same f64 payload, plus one 24-byte Vec header and one heap
/// allocation per row, twice — params and grads).
fn run_trace_case(n: usize) -> TraceCase {
    let prepared = prepare(&spec_for(n), 1);
    let data = &prepared.split.train;
    let model = LogisticRegression::new(data.dim(), 2);
    let obj = WeightedObjective::new(0.8, 0.2);
    let sgd = SgdConfig {
        lr: 0.1,
        epochs: 3,
        batch_size: 1024,
        seed: 2,
        cache_provenance: true,
    };
    let out = train(&model, &obj, data, &model.initial_params(0), &sgd);
    let trace = out.trace.expect("cache_provenance was set");
    let rows = trace.params.len() + trace.grads.len();
    let payload = trace.params.payload_bytes() + trace.grads.payload_bytes();
    TraceCase {
        n,
        rows: trace.params.len(),
        row_len: trace.params.row_len(),
        arena_bytes: payload,
        arena_allocations: 2,
        nested_bytes: payload + rows * std::mem::size_of::<Vec<f64>>(),
        nested_allocations: 2 + rows,
    }
}

struct CgRound {
    round: usize,
    cold_iters: usize,
    warm_iters: usize,
}

/// Simulate `rounds` cleaning rounds: between rounds the model moves by
/// a few SGD steps (stand-in for one DeltaGrad-L update), and each
/// round's iHVP system is solved both cold and warm-started from the
/// previous round's warm solution.
fn run_cg_rounds(n: usize, rounds: usize) -> (Vec<CgRound>, f64) {
    let prepared = prepare(&spec_for(n), 1);
    let data = &prepared.split.train;
    let val = &prepared.split.val;
    let model = LogisticRegression::new(data.dim(), 2);
    let obj = WeightedObjective::new(0.8, 0.2);
    let sgd = SgdConfig {
        lr: 0.1,
        epochs: 2,
        batch_size: 1024,
        seed: 2,
        cache_provenance: false,
    };
    let mut w = train(&model, &obj, data, &model.initial_params(0), &sgd).w;
    let cfg = InflConfig::default();

    let mut prev: Option<Vec<f64>> = None;
    let mut out = Vec::new();
    let mut max_gap = 0.0f64;
    for round in 0..rounds {
        let rc = cfg.for_round(round);
        let cold = influence_vector_outcome_from(&model, &obj, data, val, &w, &rc, None);
        let warm = influence_vector_outcome_from(&model, &obj, data, val, &w, &rc, prev.as_deref());
        let gap = cold
            .v
            .iter()
            .zip(&warm.v)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        max_gap = max_gap.max(gap);
        out.push(CgRound {
            round,
            cold_iters: cold.cg_iters,
            warm_iters: warm.cg_iters,
        });
        prev = Some(warm.v);
        // One round's model drift: a few fresh minibatch steps.
        let plan = BatchPlan::new(data.len(), 1024, 1, 100 + round as u64);
        let mut g = vec![0.0; Model::num_params(&model)];
        for (t, batch) in plan.iter() {
            if t >= 4 {
                break;
            }
            obj.batch_grad(&model, data, &batch, &w, &mut g);
            vector::axpy(-0.05, &g, &mut w);
        }
    }
    (out, max_gap)
}

fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

/// Measure every section at the current pool size and return them as the
/// child's JSON fragment: `{"grad":[...],"trace_store":{...},"cg":{...}}`.
fn measure_fragment(sizes: &[usize], reps: usize, cg_n: usize, cg_rounds: usize) -> String {
    let mut grad_cases = Vec::new();
    for &n in sizes {
        let c = run_grad_case(n, reps);
        println!(
            "n={:>7}  grad epoch: per-sample {:.2} ms / batched-serial {:.2} ms / batched {:.2} ms ({:.2}x)",
            c.n,
            c.per_sample_ms,
            c.batched_serial_ms,
            c.batched_ms,
            c.per_sample_ms / c.batched_ms,
        );
        grad_cases.push(c);
    }

    let trace = run_trace_case(*sizes.last().unwrap());
    println!(
        "trace arena: {} rows x {} params, {} payload bytes in {} allocations (nested layout: {} bytes, {} allocations)",
        trace.rows,
        trace.row_len,
        trace.arena_bytes,
        trace.arena_allocations,
        trace.nested_bytes,
        trace.nested_allocations,
    );

    let (cg, cg_gap) = run_cg_rounds(cg_n, cg_rounds);
    let cold_total: usize = cg.iter().map(|r| r.cold_iters).sum();
    let warm_total: usize = cg.iter().map(|r| r.warm_iters).sum();
    for r in &cg {
        println!(
            "cg round {}: cold {} iters, warm {} iters",
            r.round, r.cold_iters, r.warm_iters
        );
    }
    println!(
        "cg totals over {cg_rounds} rounds at n={cg_n}: cold {cold_total}, warm {warm_total} (max |v_cold - v_warm| = {cg_gap:.2e})"
    );
    assert!(
        warm_total < cold_total,
        "warm start must save iterations over a multi-round run"
    );

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("grad");
    w.begin_array();
    for c in &grad_cases {
        w.begin_object();
        w.field_u64("n", c.n as u64);
        w.field_f64("per_sample_ms", c.per_sample_ms);
        w.field_f64("batched_serial_ms", c.batched_serial_ms);
        w.field_f64("batched_ms", c.batched_ms);
        w.field_f64("batched_speedup", c.per_sample_ms / c.batched_ms);
        w.end_object();
    }
    w.end_array();
    w.key("trace_store");
    w.begin_object();
    w.field_u64("n", trace.n as u64);
    w.field_u64("rows", trace.rows as u64);
    w.field_u64("row_len", trace.row_len as u64);
    w.field_u64("arena_bytes", trace.arena_bytes as u64);
    w.field_u64("arena_allocations", trace.arena_allocations as u64);
    w.field_u64("nested_bytes", trace.nested_bytes as u64);
    w.field_u64("nested_allocations", trace.nested_allocations as u64);
    w.end_object();
    w.key("cg");
    w.begin_object();
    w.field_u64("n", cg_n as u64);
    w.field_u64("rounds", cg_rounds as u64);
    w.key("per_round");
    w.begin_array();
    for r in &cg {
        w.begin_object();
        w.field_u64("round", r.round as u64);
        w.field_u64("cold_iters", r.cold_iters as u64);
        w.field_u64("warm_iters", r.warm_iters as u64);
        w.end_object();
    }
    w.end_array();
    w.field_u64("cold_total_iters", cold_total as u64);
    w.field_u64("warm_total_iters", warm_total as u64);
    w.field_u64("iters_saved", (cold_total - warm_total) as u64);
    w.field_f64("max_solution_gap", cg_gap);
    w.end_object();
    w.end_object();
    w.finish()
}

/// Pull one named section back out of a child fragment.
fn section(fragment: &str, key: &str) -> String {
    chef_obs::parse_json(fragment)
        .expect("sweep child emitted valid JSON")
        .get(key)
        .unwrap_or_else(|| panic!("sweep child fragment lacks {key:?}"))
        .to_json()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // At least one rep, or every timing stays +inf and the JSON is garbage.
    let reps: usize = if quick {
        1
    } else {
        chef_bench::arg_value(&args, "--reps", 5).max(1)
    };
    let sizes: &[usize] = if quick {
        &[2_000]
    } else {
        &[10_000, 50_000, 200_000]
    };
    let (cg_n, cg_rounds) = if quick { (2_000, 3) } else { (50_000, 6) };
    let cores = sweep::available_cores();
    let threads = rayon::current_num_threads();
    let parallel_feature = cfg!(feature = "parallel");
    println!(
        "train_kernels: cores={cores} rayon_threads={threads} parallel_feature={parallel_feature} quick={quick}"
    );

    if sweep::is_child(&args) {
        sweep::emit_child_result(&measure_fragment(sizes, reps, cg_n, cg_rounds));
        return;
    }

    let entries = sweep::run(&args);
    if quick {
        println!("quick mode: skipping BENCH_train.json");
        return;
    }

    // telemetry.v1 envelope: common header (schema/kind/context), then the
    // kind-specific payload — the one-thread run's sections at top level
    // for readers that predate `thread_sweep`. See DESIGN.md §10.
    let base = &sweep::baseline(&entries).fragment;
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", chef_obs::SCHEMA_VERSION);
    w.field_str("kind", "train_kernels");
    w.key("context");
    w.begin_object();
    w.field_u64("available_cores", cores as u64);
    w.field_u64("rayon_threads", sweep::baseline(&entries).threads as u64);
    w.field_bool("parallel_feature", parallel_feature);
    w.field_bool("telemetry_feature", cfg!(feature = "telemetry"));
    w.field_u64("reps", reps as u64);
    w.field_u64("dim", 32);
    w.field_u64("num_classes", 2);
    w.field_u64("batch_size", 1024);
    w.field_str("unit", "ms (best of reps, one full epoch of minibatches)");
    sweep::write_context_fields(&mut w, &entries);
    w.end_object();
    for key in ["grad", "trace_store", "cg"] {
        w.key(key);
        w.raw(&section(base, key));
    }
    sweep::write_thread_sweep(&mut w, &entries, "grad", |f| section(f, "grad"));
    w.end_object();
    let path = workspace_root().join("BENCH_train.json");
    std::fs::write(&path, w.finish() + "\n").expect("write BENCH_train.json");
    println!("wrote {}", path.display());
}
