//! Internal diagnostic: suggestion quality and val/test drift per dataset.
//! Not part of the paper reproduction; used to tune the synthetic suite.

use chef_bench::prep::arg_value;
use chef_bench::{prepare, Cell, Method};
use chef_core::influence::{influence_vector, rank_infl_with_vector, InflConfig};
use chef_core::{evaluate_f1, ModelConstructor, Pipeline};
use chef_data::paper_suite;
use chef_model::LogisticRegression;
use chef_train::select_early_stop;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg_value(&args, "--scale", 5usize);
    for spec in paper_suite(scale) {
        let prepared = prepare(&spec, 0);
        let cell = Cell {
            dataset: spec.name.to_string(),
            method: Method::InflTwo,
            b: 10,
            budget: 100,
            gamma: 0.8,
            seed: 0,
            neural: false,
        };
        let cfg = chef_bench::grid::cell_config(&prepared, &cell);
        let model = LogisticRegression::new(prepared.split.train.dim(), 2);
        // Initial training.
        let ctor = ModelConstructor::new(cfg.constructor, cfg.sgd);
        let init = ctor.initial_train(&model, &cfg.objective, &prepared.split.train);
        let (w_eval, _) = select_early_stop(
            &model,
            &cfg.objective,
            &prepared.split.val,
            &init.trace.epoch_checkpoints,
            &init.w,
        );
        // Suggestion accuracy over top-100.
        let v = influence_vector(
            &model,
            &cfg.objective,
            &prepared.split.train,
            &prepared.split.val,
            &w_eval,
            &InflConfig::default(),
        );
        let pool = prepared.split.train.uncleaned_indices();
        let ranked = rank_infl_with_vector(
            &model,
            &prepared.split.train,
            &w_eval,
            &v,
            &pool,
            cfg.objective.gamma,
        );
        let top: Vec<_> = ranked.iter().take(100).collect();
        let matches = top
            .iter()
            .filter(|s| prepared.split.train.ground_truth(s.index) == Some(s.suggested))
            .count();
        let weak_match = top
            .iter()
            .filter(|s| {
                prepared.split.train.label(s.index).argmax()
                    == prepared.split.train.ground_truth(s.index).unwrap()
            })
            .count();
        // Full pipeline run for val/test drift.
        let pipeline = Pipeline::new(cfg);
        let mut sel = chef_core::InflSelector::incremental();
        let report = pipeline.run(
            &model,
            prepared.split.train.clone(),
            &prepared.split.val,
            &prepared.split.test,
            &mut sel,
        );
        let ev_val = evaluate_f1(&model, &report.final_w, &prepared.split.val);
        let ev_test = evaluate_f1(&model, &report.final_w, &prepared.split.test);
        println!(
            "{:<9} suggestions match truth: {matches}/100  (weak argmax of those was right: {weak_match}/100)  val {:.3}→{:.3}  test {:.3}→{:.3}  weak_err {:.2}",
            spec.name,
            report.initial_val_f1,
            ev_val.f1,
            report.initial_test_f1,
            ev_test.f1,
            prepared.split.train.weak_label_error_rate().unwrap_or(f64::NAN),
        );
    }
}
