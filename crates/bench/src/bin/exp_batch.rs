//! **Appendix G.5** — Table 14 of the CHEF paper.
//!
//! How the per-round batch size `b` trades model quality against total
//! running time for a fixed budget: Infl (two) on the Twitter- and
//! Fashion-like datasets, sweeping `b` from the whole budget down to a
//! small fraction of it. The paper uses budget 1000 with
//! `b ∈ {1000 … 10}` and recommends `b ≈ 10%` of the budget; the sweep
//! here keeps the same `b/B` ratios at the scaled-down budget.
//!
//! ```text
//! cargo run --release -p chef-bench --bin exp_batch [--scale 5] [--budget 200]
//! ```

use chef_bench::prep::arg_value;
use chef_bench::{fmt_mean_std, prepare, print_table, run_grid, write_results_csv, Cell, Method};
use std::collections::HashMap;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg_value(&args, "--scale", 5usize);
    let seeds = arg_value(&args, "--seeds", 3u64);
    let budget = arg_value(&args, "--budget", 200usize);
    let datasets = ["Twitter", "Fashion"];
    // Same b/B ratios as the paper's {1000, 500, 200, 100, 50, 20, 10}/1000.
    let ratios = [1.0, 0.5, 0.2, 0.1, 0.05, 0.02, 0.01];
    let bs: Vec<usize> = ratios
        .iter()
        .map(|r| ((budget as f64 * r).round() as usize).max(1))
        .collect();

    let mut cells = Vec::new();
    for d in datasets {
        for seed in 0..seeds {
            for &b in &bs {
                cells.push(Cell {
                    dataset: d.to_string(),
                    method: Method::InflTwo,
                    b,
                    budget,
                    gamma: 0.8,
                    seed,
                    neural: false,
                });
            }
        }
    }
    eprintln!("exp_batch: {} cells", cells.len());
    let results = run_grid(cells, |name, seed| {
        let spec = chef_data::by_name(name, scale).unwrap();
        prepare(&spec, seed)
    });

    let mut f1: HashMap<(String, usize), Vec<f64>> = HashMap::new();
    let mut time: HashMap<(String, usize), Vec<f64>> = HashMap::new();
    let mut uncleaned: HashMap<String, Vec<f64>> = HashMap::new();
    for r in &results {
        let key = (r.cell.dataset.clone(), r.cell.b);
        f1.entry(key.clone()).or_default().push(r.cleaned_f1);
        let total =
            r.report.total_select_time().as_secs_f64() + r.report.total_update_time().as_secs_f64();
        time.entry(key).or_default().push(total);
        uncleaned
            .entry(r.cell.dataset.clone())
            .or_default()
            .push(r.uncleaned_f1);
    }

    let mut header = vec![
        "dataset".to_string(),
        "metric".to_string(),
        "uncleaned".to_string(),
    ];
    header.extend(bs.iter().map(|b| format!("b={b}")));
    let mut rows = Vec::new();
    for d in datasets {
        let mut frow = vec![d.to_string(), "F1".to_string(), fmt_mean_std(&uncleaned[d])];
        let mut trow = vec![d.to_string(), "time (s)".to_string(), "-".to_string()];
        for &b in &bs {
            frow.push(fmt_mean_std(&f1[&(d.to_string(), b)]));
            let (m, s) = chef_linalg::mean_std(&time[&(d.to_string(), b)]);
            trow.push(format!("{m:.2}\u{b1}{s:.2}"));
        }
        rows.push(frow);
        rows.push(trow);
    }
    print_table(
        &format!("Table 14 — batch-size sweep, Infl (two), budget {budget} (scale 1/{scale})"),
        &header,
        &rows,
    );
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let path = write_results_csv("table14", &header_refs, &rows);
    eprintln!("wrote {}", path.display());
}
