//! **Figure 3** of the CHEF paper.
//!
//! t-SNE embedding of the validation + test samples of the Twitter- and
//! Fashion-like datasets, with ground-truth classes as '+' / '−' marks
//! and the most influential training sample `S` (per Infl) as an '×'.
//! The paper's argument: `S` lands near one class's cluster, Infl's
//! suggested label matches that cluster, and therefore Infl's labels are
//! trustworthy even where human labels disagree. The harness prints the
//! neighbour-majority check and writes both SVG and CSV per dataset.
//!
//! ```text
//! cargo run --release -p chef-bench --bin figure3 [--scale 5]
//! ```

use chef_bench::prep::arg_value;
use chef_bench::{prepare, results_dir, Cell, Method};
use chef_core::influence::{influence_vector, rank_infl_with_vector, InflConfig};
use chef_core::ModelConstructor;
use chef_linalg::{vector, Matrix};
use chef_model::LogisticRegression;
use chef_viz::plot::{Marker, ScatterPlot, Series};
use chef_viz::tsne::{tsne, TsneConfig};
use chef_viz::write_csv;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg_value(&args, "--scale", 5usize);
    for name in ["Twitter", "Fashion"] {
        let spec = chef_data::by_name(name, scale).unwrap();
        let prepared = prepare(&spec, 0);
        let cell = Cell {
            dataset: name.to_string(),
            method: Method::InflTwo,
            b: 10,
            budget: 100,
            gamma: 0.8,
            seed: 0,
            neural: false,
        };
        let cfg = chef_bench::cell_config(&prepared, &cell);
        let model = LogisticRegression::new(prepared.split.train.dim(), 2);
        let ctor = ModelConstructor::new(cfg.constructor, cfg.sgd);
        let init = ctor.initial_train(&model, &cfg.objective, &prepared.split.train);

        // The most influential training sample S and its suggested label.
        let v = influence_vector(
            &model,
            &cfg.objective,
            &prepared.split.train,
            &prepared.split.val,
            &init.w,
            &InflConfig::default(),
        );
        let pool = prepared.split.train.uncleaned_indices();
        let ranked = rank_infl_with_vector(
            &model,
            &prepared.split.train,
            &init.w,
            &v,
            &pool,
            cfg.objective.gamma,
        );
        let s_top = ranked[0];

        // Stack val + test features plus the S feature row, embed with
        // t-SNE (S rides along so it lands in the same map).
        let val = &prepared.split.val;
        let test = &prepared.split.test;
        let dim = val.dim();
        let n = val.len() + test.len() + 1;
        let mut raw = Vec::with_capacity(n * dim);
        let mut truths = Vec::with_capacity(n - 1);
        for i in 0..val.len() {
            raw.extend_from_slice(val.feature(i));
            truths.push(val.ground_truth(i).unwrap());
        }
        for i in 0..test.len() {
            raw.extend_from_slice(test.feature(i));
            truths.push(test.ground_truth(i).unwrap());
        }
        raw.extend_from_slice(prepared.split.train.feature(s_top.index));
        let stacked = Matrix::from_vec(n, dim, raw);
        let embedding = tsne(
            &stacked,
            &TsneConfig {
                perplexity: 20.0,
                iters: 400,
                learning_rate: 10.0,
                ..TsneConfig::default()
            },
        );

        // Neighbour-majority check around S in the embedding.
        let s_row = embedding.row(n - 1).to_vec();
        let mut dists: Vec<(f64, usize)> = (0..n - 1)
            .map(|i| (vector::distance(embedding.row(i), &s_row), truths[i]))
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0));
        let k = 15.min(dists.len());
        let pos = dists[..k].iter().filter(|(_, t)| *t == 1).count();
        let neighbour_majority = usize::from(pos * 2 > k);
        println!(
            "{name}: S = train sample {} | Infl suggests class {} | {k}-NN majority in embedding: class {neighbour_majority} ({pos}/{k} positive) | ground truth of S: {:?} | match(suggestion, neighbours) = {}",
            s_top.index,
            s_top.suggested,
            prepared.split.train.ground_truth(s_top.index),
            s_top.suggested == neighbour_majority,
        );

        // SVG: '+' positives, '−'-ish circles for negatives, '×' for S.
        let mut plot = ScatterPlot::new(format!("Figure 3 — {name} (t-SNE of val/test + S)"));
        let mut posi = Series::new("positive (truth)", "#2b6cb0").with_marker(Marker::Plus);
        let mut nega = Series::new("negative (truth)", "#c05621");
        nega.radius = 2.0;
        for (i, &t) in truths.iter().enumerate() {
            let p = (embedding.row(i)[0], embedding.row(i)[1]);
            if t == 1 {
                posi.points.push(p);
            } else {
                nega.points.push(p);
            }
        }
        let mut s_series =
            Series::new("most influential sample S", "crimson").with_marker(Marker::Cross);
        s_series.radius = 7.0;
        s_series.points.push((s_row[0], s_row[1]));
        plot.push(posi);
        plot.push(nega);
        plot.push(s_series);
        let svg_path = results_dir().join(format!("figure3_{}.svg", name.to_lowercase()));
        plot.save(&svg_path).expect("write svg");

        // CSV of the raw embedding.
        let mut rows = Vec::new();
        for i in 0..n {
            let kind = truths
                .get(i)
                .map_or_else(|| "S".to_string(), usize::to_string);
            rows.push(vec![
                format!("{:.4}", embedding.row(i)[0]),
                format!("{:.4}", embedding.row(i)[1]),
                kind,
            ]);
        }
        let csv_path = results_dir().join(format!("figure3_{}.csv", name.to_lowercase()));
        write_csv(&csv_path, &["x", "y", "class"], &rows).expect("write csv");
        eprintln!("wrote {} and {}", svg_path.display(), csv_path.display());
    }
}
