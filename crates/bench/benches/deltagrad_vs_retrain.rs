//! Microbenchmark behind Figure 2: one model-constructor invocation after
//! a 10-sample cleaning round, Retrain vs DeltaGrad-L.

use chef_bench::prepare;
use chef_core::{ConstructorKind, ModelConstructor};
use chef_model::{LogisticRegression, SoftLabel, WeightedObjective};
use chef_train::{DeltaGradConfig, SgdConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_constructors(c: &mut Criterion) {
    let spec = chef_data::by_name("MIMIC", 25).unwrap();
    let prepared = prepare(&spec, 1);
    let data = prepared.split.train.clone();
    let model = LogisticRegression::new(data.dim(), 2);
    let obj = WeightedObjective::new(0.8, 0.2);
    let sgd = SgdConfig {
        lr: 0.1,
        epochs: 15,
        batch_size: 256,
        seed: 3,
        cache_provenance: true,
    };
    let retrain = ModelConstructor::new(ConstructorKind::Retrain, sgd);
    let dg = ModelConstructor::new(ConstructorKind::DeltaGradL(DeltaGradConfig::default()), sgd);
    let init = retrain.initial_train(&model, &obj, &data);
    let mut cleaned = data.clone();
    let changed: Vec<usize> = (0..10).collect();
    for &i in &changed {
        let t = data.ground_truth(i).unwrap();
        cleaned.clean_label(i, SoftLabel::onehot(t, 2));
    }

    let mut group = c.benchmark_group("model_constructor");
    group.sample_size(10);
    group.bench_function("retrain", |b| {
        b.iter(|| {
            retrain.update(
                &model,
                &obj,
                &data,
                black_box(&cleaned),
                &changed,
                &init.trace,
            )
        })
    });
    group.bench_function("deltagrad_l", |b| {
        b.iter(|| {
            dg.update(
                &model,
                &obj,
                &data,
                black_box(&cleaned),
                &changed,
                &init.trace,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_constructors);
criterion_main!(benches);
