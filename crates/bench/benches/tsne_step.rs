//! Microbenchmark: t-SNE embedding cost at Figure 3 sizes.

use chef_linalg::Matrix;
use chef_viz::tsne::{tsne, TsneConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn blobs(n: usize, dim: usize, seed: u64) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let raw: Vec<f64> = (0..n * dim)
        .map(|i| {
            let c = if (i / dim).is_multiple_of(2) {
                -3.0
            } else {
                3.0
            };
            c + rng.gen_range(-1.0..1.0)
        })
        .collect();
    Matrix::from_vec(n, dim, raw)
}

fn bench_tsne(c: &mut Criterion) {
    let mut group = c.benchmark_group("tsne");
    group.sample_size(10);
    for n in [60usize, 120] {
        let data = blobs(n, 32, 7);
        let cfg = TsneConfig {
            iters: 100,
            exaggeration_iters: 25,
            learning_rate: 10.0,
            ..TsneConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("embed_100_iters", n), &n, |b, _| {
            b.iter(|| tsne(black_box(&data), &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tsne);
criterion_main!(benches);
