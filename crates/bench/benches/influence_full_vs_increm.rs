//! Microbenchmark behind Table 2: one selector round, Full vs Increm-Infl
//! (bounds + pruned exact evaluation), on a drifted model state — each
//! selector in both its dispatching (parallel with the default feature
//! set) and forced-serial form, so a single run shows the threading gain
//! next to the algorithmic pruning gain. For the dedicated scaling sweep
//! see the `par_speedup` binary.

use chef_bench::prepare;
use chef_core::increm::IncremInfl;
use chef_core::influence::{
    influence_vector, rank_infl_with_vector, rank_infl_with_vector_serial, InflConfig,
};
use chef_model::{LogisticRegression, Model, WeightedObjective};
use chef_train::{train, SgdConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_selectors(c: &mut Criterion) {
    let spec = chef_data::by_name("MIMIC", 25).unwrap();
    let prepared = prepare(&spec, 1);
    let data = &prepared.split.train;
    let val = &prepared.split.val;
    let model = LogisticRegression::new(data.dim(), 2);
    let obj = WeightedObjective::new(0.8, 0.2);
    let sgd = SgdConfig {
        lr: 0.1,
        epochs: 15,
        batch_size: 256,
        seed: 2,
        cache_provenance: false,
    };
    let w0 = train(&model, &obj, data, &model.initial_params(0), &sgd).w;
    let increm = IncremInfl::initialize(&model, data, &w0);
    // Drift the model a little (more epochs), as in later rounds.
    let w_k = train(&model, &obj, data, &w0, &SgdConfig { epochs: 2, ..sgd }).w;
    let v = influence_vector(&model, &obj, data, val, &w_k, &InflConfig::default());
    let pool = data.uncleaned_indices();

    let mut group = c.benchmark_group("selector_round");
    group.sample_size(20);
    group.bench_function("full", |b| {
        b.iter(|| rank_infl_with_vector(&model, data, &w_k, black_box(&v), &pool, obj.gamma))
    });
    group.bench_function("full_serial", |b| {
        b.iter(|| rank_infl_with_vector_serial(&model, data, &w_k, black_box(&v), &pool, obj.gamma))
    });
    group.bench_function("increm_infl", |b| {
        b.iter(|| increm.select(&model, data, &w_k, black_box(&v), &pool, 10, obj.gamma))
    });
    group.bench_function("increm_bounds_only", |b| {
        b.iter(|| increm.candidates(&model, data, &w_k, black_box(&v), &pool, 10, obj.gamma))
    });
    group.bench_function("increm_bounds_only_serial", |b| {
        b.iter(|| increm.candidates_serial(&model, data, &w_k, black_box(&v), &pool, 10, obj.gamma))
    });
    group.finish();
}

criterion_group!(benches, bench_selectors);
criterion_main!(benches);
