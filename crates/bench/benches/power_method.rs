//! Microbenchmark: the Appendix D power method for per-sample Hessian
//! norms, comparing the generic HVP path against the closed-form
//! Kronecker-core shortcut logistic regression uses.

use chef_linalg::power::{power_method, PowerConfig};
use chef_linalg::{LinearOperator, Matrix};
use chef_model::{LogisticRegression, Model, SoftLabel};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

struct SampleHessian<'a> {
    model: &'a LogisticRegression,
    w: &'a [f64],
    x: &'a [f64],
    y: &'a SoftLabel,
}

impl LinearOperator for SampleHessian<'_> {
    fn dim(&self) -> usize {
        self.model.num_params()
    }
    fn apply(&self, v: &[f64], out: &mut [f64]) {
        self.model.hvp(self.w, self.x, self.y, v, out);
    }
}

fn bench_power(c: &mut Criterion) {
    let dim = 32;
    let model = LogisticRegression::new(dim, 2);
    let w: Vec<f64> = (0..model.num_params())
        .map(|i| (i as f64 * 0.1).sin())
        .collect();
    let x: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.3).cos()).collect();
    let y = SoftLabel::uniform(2);

    let mut group = c.benchmark_group("hessian_norm");
    group.bench_function("closed_form_core", |b| {
        b.iter(|| model.hessian_norm(black_box(&w), black_box(&x), &y))
    });
    group.bench_function("generic_power_method", |b| {
        let op = SampleHessian {
            model: &model,
            w: &w,
            x: &x,
            y: &y,
        };
        b.iter(|| power_method(black_box(&op), &PowerConfig::default()).eigenvalue)
    });
    group.bench_function("dense_matrix_power_method", |b| {
        // Oracle path: materialize a 66×66 Hessian once, then iterate.
        let m = model.num_params();
        let mut h = Matrix::zeros(m, m);
        let mut col = vec![0.0; m];
        let mut e = vec![0.0; m];
        for j in 0..m {
            e[j] = 1.0;
            model.hvp(&w, &x, &y, &e, &mut col);
            for i in 0..m {
                h[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        b.iter(|| power_method(black_box(&h), &PowerConfig::default()).eigenvalue)
    });
    group.finish();
}

criterion_group!(benches, bench_power);
criterion_main!(benches);
