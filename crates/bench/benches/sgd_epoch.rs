//! Microbenchmark: SGD training cost with and without provenance caching
//! (the overhead the initialization step pays to enable DeltaGrad-L).

use chef_bench::prepare;
use chef_model::{LogisticRegression, Model, WeightedObjective};
use chef_train::{train, SgdConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_sgd(c: &mut Criterion) {
    let spec = chef_data::by_name("Retina", 25).unwrap();
    let prepared = prepare(&spec, 1);
    let data = &prepared.split.train;
    let model = LogisticRegression::new(data.dim(), 2);
    let obj = WeightedObjective::new(0.8, 0.2);
    let w0 = model.initial_params(0);
    let base = SgdConfig {
        lr: 0.1,
        epochs: 5,
        batch_size: 256,
        seed: 4,
        cache_provenance: false,
    };

    let mut group = c.benchmark_group("sgd_5_epochs");
    group.sample_size(20);
    group.bench_function("plain", |b| {
        b.iter(|| train(&model, &obj, black_box(data), &w0, &base))
    });
    group.bench_function("with_provenance", |b| {
        let cfg = SgdConfig {
            cache_provenance: true,
            ..base
        };
        b.iter(|| train(&model, &obj, black_box(data), &w0, &cfg))
    });
    group.finish();
}

criterion_group!(benches, bench_sgd);
criterion_main!(benches);
