//! Microbenchmark: conjugate-gradient `H⁻¹v` solves (the per-round fixed
//! cost of every influence-based selector, paper §4.1.1).

use chef_bench::prepare;
use chef_core::influence::{influence_vector, InflConfig};
use chef_model::{LogisticRegression, Model, WeightedObjective};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_cg(c: &mut Criterion) {
    let mut group = c.benchmark_group("cg_hessian_inverse");
    group.sample_size(20);
    for scale in [100usize, 25] {
        let spec = chef_data::by_name("MIMIC", scale).unwrap();
        let prepared = prepare(&spec, 1);
        let model = LogisticRegression::new(prepared.split.train.dim(), 2);
        let obj = WeightedObjective::new(0.8, 0.2);
        let w = vec![0.05; model.num_params()];
        let n = prepared.split.train.len();
        group.bench_with_input(BenchmarkId::new("influence_vector", n), &n, |b, _| {
            b.iter(|| {
                influence_vector(
                    &model,
                    &obj,
                    black_box(&prepared.split.train),
                    &prepared.split.val,
                    &w,
                    &InflConfig::default(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cg);
criterion_main!(benches);
